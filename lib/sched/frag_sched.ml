(** Conventional scheduler for transformed (fragmented) specifications
    (paper §3.3 / Fig. 3 g).

    The nodes of a transformed graph are addition fragments — each carrying
    an (ASAP, ALAP) cycle window — plus glue.  The scheduler walks the
    graph in topological order and places every fragment in the
    usage-lightest feasible cycle of its window, so fragments of one
    original operation may land in several, possibly *unconsecutive*,
    cycles (the paper's operation A executes in cycles 1 and 3), and a
    result bit is consumed in the very cycle it is produced.

    Feasibility of a candidate cycle is checked bit by bit: every operand
    bit must be registered (produced in an earlier cycle) or already
    settled in the same cycle, the fragment's own ripple must fit the
    chaining budget, and every bit must settle no later than its global
    deadline — the last condition guarantees that all still-unplaced
    successors keep a feasible (ALAP) placement, so the greedy pass never
    paints itself into a corner.

    The per-candidate-cycle feasibility probe is the innermost loop of the
    whole flow, so it runs on a prebuilt {!Hls_timing.Bitnet} (flat packed
    deps, no per-bit allocation); the net is kept in the result for the
    binder's costly-bit and lifetime queries.

    Glue is not scheduled: each glue *bit* simply inherits the time of the
    bits it forwards. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module Transform = Hls_fragment.Transform
module Bitnet = Hls_timing.Bitnet

type bit_time = { bt_cycle : int; bt_slot : int }
(** When a bit settles: δ slot [bt_slot] (1-based) of cycle [bt_cycle];
    slot 0 means "stable at cycle start". *)

type t = {
  transformed : Transform.t;
  latency : int;
  n_bits : int;
  cycle_of : int array;  (** cycle of each Add node; 0 for glue *)
  bit_time : bit_time array array;
  net : Bitnet.t;  (** dependency net of the transformed graph *)
}

exception Infeasible of string

let graph t = t.transformed.Transform.graph

(* Absolute δ slot of a bit time (for deadline comparison). *)
let absolute ~n_bits { bt_cycle; bt_slot } = ((bt_cycle - 1) * n_bits) + bt_slot

let window_caps (tr : Transform.t) ~latency ~n_bits g id _bit =
  match (Graph.node g id).kind with
  | Add ->
      let _, w_alap = tr.Transform.windows.(id) in
      w_alap * n_bits
  | _ -> latency * n_bits

let schedule ?(balance = true) ?chain_cap ?pin ?net (tr : Transform.t) =
  let g = tr.Transform.graph in
  let plan = tr.Transform.plan in
  let latency = plan.Hls_fragment.Mobility.latency in
  let n_bits = plan.Hls_fragment.Mobility.n_bits in
  (* The chaining cap may only tighten the budget: cycles stay [n_bits] δ
     apart in absolute-slot space, so the deadline analysis (a necessity
     bound under the full budget) remains sound under the cap. *)
  let cap =
    match chain_cap with
    | None -> n_bits
    | Some c when c >= 1 -> min c n_bits
    | Some c -> raise (Infeasible (Printf.sprintf "chain cap %d below 1 δ" c))
  in
  let n_nodes = Graph.node_count g in
  let net = match net with Some n -> n | None -> Bitnet.build g in
  let cycle_of = Array.make n_nodes 0 in
  let bit_time = Array.make n_nodes [||] in
  (* Deadlines honour each fragment's window: a bit of a fragment whose
     window ends at cycle k must settle by slot k·n_bits even if the pure
     dataflow ALAP would allow later — this is what makes window-tightening
     policies (coalescing) safe for the greedy scheduler. *)
  let deadline =
    Hls_timing.Deadline.of_net net
      ~total_slots:(latency * n_bits)
      ~caps:(window_caps tr ~latency ~n_bits g)
  in
  let usage = Array.make latency 0 in
  (* Bit times of node [n] placed in [cycle] (glue: cycle ignored, bits
     inherit dependency times).  None if some dependency is not available
     or the ripple overflows the budget.  Omitted Input/Const bits settle
     at {cycle 0, slot 0} — exactly the folds' base case. *)
  let try_place (n : node) ~is_add ~cycle =
    let times = Array.make n.width { bt_cycle = 0; bt_slot = 0 } in
    let ok = ref true in
    let base = net.Bitnet.bit_base.(n.id) in
    for pos = 0 to n.width - 1 do
      let b = base + pos in
      if is_add then begin
        let ready = ref 0 in
        for k = net.Bitnet.dep_off.(b) to net.Bitnet.dep_off.(b + 1) - 1 do
          let d = net.Bitnet.deps.(k) in
          let t =
            if Bitnet.dep_is_self d then times.(Bitnet.dep_self_bit d)
            else bit_time.(Bitnet.dep_node_id d).(Bitnet.dep_node_bit d)
          in
          if t.bt_cycle > cycle then ok := false
          else if t.bt_cycle = cycle && t.bt_slot > !ready then
            ready := t.bt_slot
        done;
        let slot = !ready + net.Bitnet.cost.(b) in
        if slot > cap then ok := false;
        times.(pos) <- { bt_cycle = cycle; bt_slot = slot };
        if
          absolute ~n_bits times.(pos)
          > Hls_timing.Deadline.slot deadline ~id:n.id ~bit:pos
        then ok := false
      end
      else begin
        (* Glue: the bit settles exactly when its latest dependency does. *)
        let latest = ref { bt_cycle = 0; bt_slot = 0 } in
        for k = net.Bitnet.dep_off.(b) to net.Bitnet.dep_off.(b + 1) - 1 do
          let d = net.Bitnet.deps.(k) in
          let t =
            if Bitnet.dep_is_self d then times.(Bitnet.dep_self_bit d)
            else bit_time.(Bitnet.dep_node_id d).(Bitnet.dep_node_bit d)
          in
          let l = !latest in
          if
            t.bt_cycle > l.bt_cycle
            || (t.bt_cycle = l.bt_cycle && t.bt_slot > l.bt_slot)
          then latest := t
        done;
        times.(pos) <- !latest
      end
    done;
    if !ok then Some times else None
  in
  Graph.iter_nodes
    (fun (n : node) ->
      match n.kind with
      | Add ->
          let w_asap, w_alap = tr.Transform.windows.(n.id) in
          (* A pin narrows the candidate range to one cycle (the iteration
             driver pins fragments outside the region being reworked); a
             pin outside the window is ignored rather than made fatal. *)
          let w_asap, w_alap =
            match pin with
            | None -> (w_asap, w_alap)
            | Some f -> (
                match f n.id with
                | Some c when c >= w_asap && c <= w_alap -> (c, c)
                | Some _ | None -> (w_asap, w_alap))
          in
          (* δ-costly bits claim adder area; pure carry columns do not. *)
          let weight = Bitnet.costly_width net ~id:n.id in
          let best = ref None in
          for cycle = w_asap to w_alap do
            match try_place n ~is_add:true ~cycle with
            | Some times -> (
                let u = usage.(cycle - 1) in
                match !best with
                | Some _ when not balance -> ()  (* keep the earliest *)
                | Some (_, _, bu) when bu <= u -> ()
                | _ -> best := Some (cycle, times, u))
            | None -> ()
          done;
          (match !best with
          | None ->
              raise
                (Infeasible
                   (Printf.sprintf
                      "fragment %d (%s) has no feasible cycle in [%d,%d]" n.id
                      n.label w_asap w_alap))
          | Some (cycle, times, _) ->
              cycle_of.(n.id) <- cycle;
              bit_time.(n.id) <- times;
              usage.(cycle - 1) <- usage.(cycle - 1) + weight)
      | _ -> (
          match try_place n ~is_add:false ~cycle:0 with
          | Some times -> bit_time.(n.id) <- times
          | None -> assert false))
    g;
  { transformed = tr; latency; n_bits; cycle_of; bit_time; net }

(** Per-query {!Hls_timing.Bitdep.bit_deps} scheduler: the executable
    reference for property tests and benchmark baselines.  Produces the
    same placement as {!schedule}. *)
let schedule_reference ?(balance = true) (tr : Transform.t) =
  let g = tr.Transform.graph in
  let plan = tr.Transform.plan in
  let latency = plan.Hls_fragment.Mobility.latency in
  let n_bits = plan.Hls_fragment.Mobility.n_bits in
  let n_nodes = Graph.node_count g in
  let cycle_of = Array.make n_nodes 0 in
  let bit_time = Array.make n_nodes [||] in
  let deadline =
    Hls_timing.Deadline.compute_reference g
      ~total_slots:(latency * n_bits)
      ~caps:(window_caps tr ~latency ~n_bits g)
  in
  let usage = Array.make latency 0 in
  let time_of_source = function
    | Input _ | Const _ -> fun _ -> { bt_cycle = 0; bt_slot = 0 }
    | Node id -> fun bit -> bit_time.(id).(bit)
  in
  let try_place (n : node) ~is_add ~cycle =
    let times = Array.make n.width { bt_cycle = 0; bt_slot = 0 } in
    let ok = ref true in
    for pos = 0 to n.width - 1 do
      let cost, deps = Hls_timing.Bitdep.bit_deps g n pos in
      let dep_time d =
        match d with
        | Hls_timing.Bitdep.Self j -> times.(j)
        | Hls_timing.Bitdep.Bit (src, i) -> time_of_source src i
      in
      if is_add then begin
        let ready =
          List.fold_left
            (fun acc d ->
              let t = dep_time d in
              if t.bt_cycle > cycle then begin
                ok := false;
                acc
              end
              else if t.bt_cycle = cycle then max acc t.bt_slot
              else acc)
            0 deps
        in
        let slot = ready + cost in
        if slot > n_bits then ok := false;
        times.(pos) <- { bt_cycle = cycle; bt_slot = slot };
        if
          absolute ~n_bits times.(pos)
          > Hls_timing.Deadline.slot deadline ~id:n.id ~bit:pos
        then ok := false
      end
      else begin
        let t =
          List.fold_left
            (fun acc d ->
              let t = dep_time d in
              if
                t.bt_cycle > acc.bt_cycle
                || (t.bt_cycle = acc.bt_cycle && t.bt_slot > acc.bt_slot)
              then t
              else acc)
            { bt_cycle = 0; bt_slot = 0 } deps
        in
        times.(pos) <- t
      end
    done;
    if !ok then Some times else None
  in
  Graph.iter_nodes
    (fun (n : node) ->
      match n.kind with
      | Add ->
          let w_asap, w_alap = tr.Transform.windows.(n.id) in
          let weight =
            List.length
              (List.filter
                 (fun pos -> fst (Hls_timing.Bitdep.bit_deps g n pos) > 0)
                 (Hls_util.List_ext.range 0 n.width))
          in
          let best = ref None in
          for cycle = w_asap to w_alap do
            match try_place n ~is_add:true ~cycle with
            | Some times -> (
                let u = usage.(cycle - 1) in
                match !best with
                | Some _ when not balance -> ()
                | Some (_, _, bu) when bu <= u -> ()
                | _ -> best := Some (cycle, times, u))
            | None -> ()
          done;
          (match !best with
          | None ->
              raise
                (Infeasible
                   (Printf.sprintf
                      "fragment %d (%s) has no feasible cycle in [%d,%d]" n.id
                      n.label w_asap w_alap))
          | Some (cycle, times, _) ->
              cycle_of.(n.id) <- cycle;
              bit_time.(n.id) <- times;
              usage.(cycle - 1) <- usage.(cycle - 1) + weight)
      | _ -> (
          match try_place n ~is_add:false ~cycle:0 with
          | Some times -> bit_time.(n.id) <- times
          | None -> assert false))
    g;
  { transformed = tr; latency; n_bits; cycle_of; bit_time;
    net = Bitnet.build g }

(** Longest chain actually used in any cycle — the achieved cycle length
    in δ (at most the budget). *)
let used_delta t =
  Array.fold_left
    (fun acc times ->
      Array.fold_left (fun acc bt -> max acc bt.bt_slot) acc times)
    0 t.bit_time

(** Add nodes placed in [cycle]. *)
let adds_in_cycle t cycle =
  Graph.fold_nodes
    (fun acc (n : node) ->
      if n.kind = Add && t.cycle_of.(n.id) = cycle then n :: acc else acc)
    [] (graph t)
  |> List.rev

type cycle_profile = {
  cp_cycle : int;
  cp_used_delta : int;  (** longest chain settled in this cycle *)
  cp_fragments : int;
  cp_adder_bits : int;  (** δ-costly bits executed in this cycle *)
}

(** Per-cycle usage report: chain occupation, fragment population and adder
    pressure — what a designer reads to see where the schedule is tight. *)
let profile t =
  List.map
    (fun cycle ->
      let fragments = adds_in_cycle t cycle in
      let used =
        List.fold_left
          (fun acc (n : node) ->
            Array.fold_left
              (fun acc bt ->
                if bt.bt_cycle = cycle then max acc bt.bt_slot else acc)
              acc t.bit_time.(n.id))
          0 fragments
      in
      let bits =
        Hls_util.List_ext.sum_by
          (fun (n : node) -> Bitnet.costly_width t.net ~id:n.id)
          fragments
      in
      {
        cp_cycle = cycle;
        cp_used_delta = used;
        cp_fragments = List.length fragments;
        cp_adder_bits = bits;
      })
    (Hls_util.List_ext.range 1 (t.latency + 1))

(** Independent checker of a fragment schedule.  Deliberately evaluates
    {!Hls_timing.Bitdep.bit_deps} directly so a net-based schedule is
    cross-checked against the reference dependency model. *)
let verify t =
  let g = graph t in
  let errs = ref [] in
  let fail fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  Graph.iter_nodes
    (fun (n : node) ->
      let times = t.bit_time.(n.id) in
      if Array.length times <> n.width then fail "node %d missing times" n.id;
      (if n.kind = Add then begin
         let cy = t.cycle_of.(n.id) in
         let w_asap, w_alap = t.transformed.Transform.windows.(n.id) in
         if cy < w_asap || cy > w_alap then
           fail "node %d placed at %d outside window [%d,%d]" n.id cy w_asap
             w_alap
       end);
      Array.iteri
        (fun pos bt ->
          if bt.bt_slot > t.n_bits then
            fail "node %d bit %d overflows the cycle" n.id pos;
          let cost, deps = Hls_timing.Bitdep.bit_deps g n pos in
          List.iter
            (fun d ->
              let dt =
                match d with
                | Hls_timing.Bitdep.Self j -> times.(j)
                | Hls_timing.Bitdep.Bit (Input _, _)
                | Hls_timing.Bitdep.Bit (Const _, _) ->
                    { bt_cycle = 0; bt_slot = 0 }
                | Hls_timing.Bitdep.Bit (Node id, i) -> t.bit_time.(id).(i)
              in
              if dt.bt_cycle > bt.bt_cycle then
                fail "node %d bit %d consumes a later cycle" n.id pos
              else if
                dt.bt_cycle = bt.bt_cycle && dt.bt_slot > bt.bt_slot - cost
              then fail "node %d bit %d chains too early" n.id pos)
            deps)
        times)
    g;
  match !errs with [] -> Ok () | e -> Error (String.concat "; " e)

(** True when some original operation executes in non-consecutive cycles —
    the capability the paper claims unique to this method. *)
let has_unconsecutive_execution t =
  let g = graph t in
  let by_op = Hashtbl.create 16 in
  Graph.iter_nodes
    (fun (n : node) ->
      match (n.kind, n.origin) with
      | Add, Some o ->
          let cycles =
            Option.value (Hashtbl.find_opt by_op o.orig_op) ~default:[]
          in
          Hashtbl.replace by_op o.orig_op (t.cycle_of.(n.id) :: cycles)
      | _ -> ())
    g;
  Hashtbl.fold
    (fun _ cycles acc ->
      acc
      ||
      let sorted = List.sort_uniq compare cycles in
      match sorted with
      | [] | [ _ ] -> false
      | first :: rest ->
          let rec gaps prev = function
            | [] -> false
            | x :: tl -> x > prev + 1 || gaps x tl
          in
          gaps first rest)
    by_op false
