(** Resource-constrained list scheduling: the classic dual of the paper's
    time-constrained problem.  Given a budget of adder bits (and optionally
    multiplier cells) available per cycle, find the smallest latency and a
    placement that respects both the data dependencies (with operation
    chaining, as in {!List_sched}) and the per-cycle resource budget.

    Applied to a *transformed* specification's fragments this answers the
    practical sizing question the paper leaves implicit: "I can afford N
    adder bits — how fast does the fragmented design go?" *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module Transform = Hls_fragment.Transform

exception Infeasible of string

type t = {
  schedule : Frag_sched.t;
  adder_bit_budget : int;
  latency : int;  (** achieved latency (≥ the transform's target) *)
}

(** Peak per-cycle adder bits of a fragment schedule. *)
let peak_adder_bits (s : Frag_sched.t) =
  let g = Frag_sched.graph s in
  let net = s.Frag_sched.net in
  let usage = Array.make (s.Frag_sched.latency + 1) 0 in
  Graph.iter_nodes
    (fun (n : node) ->
      if n.kind = Add then begin
        let c = s.Frag_sched.cycle_of.(n.id) in
        usage.(c) <- usage.(c) + Hls_timing.Bitnet.costly_width net ~id:n.id
      end)
    g;
  Array.fold_left max 0 usage

(** Schedule [graph] (kernel form) under an adder-bit budget: search for
    the smallest latency whose fragmented, balanced schedule stays within
    [adder_bits] per cycle.  [max_latency] bounds the search (default:
    enough cycles to serialize everything). *)
let schedule ?max_latency graph ~adder_bits =
  if adder_bits < 1 then
    invalid_arg "Resource_sched.schedule: adder_bits must be >= 1";
  let net = Hls_timing.Bitnet.build graph in
  let total_bits =
    Graph.fold_nodes
      (fun acc (n : node) ->
        if n.kind = Add then
          acc + Hls_timing.Bitnet.costly_width net ~id:n.id
        else acc)
      0 graph
  in
  let critical = Hls_timing.Critical_path.critical_delta graph in
  let upper =
    match max_latency with
    | Some l -> l
    | None -> max critical (Hls_util.Int_math.ceil_div total_bits adder_bits) * 2
  in
  (* Latency feasibility is not monotone in general (shorter cycles spread
     work differently), so scan upward from the dependency bound. *)
  let lower =
    max 1 (Hls_util.Int_math.ceil_div total_bits adder_bits)
  in
  let rec search latency =
    if latency > upper then
      raise
        (Infeasible
           (Printf.sprintf
              "no latency <= %d meets %d adder bits per cycle" upper
              adder_bits))
    else
      match Frag_sched.schedule (Transform.run graph ~latency) with
      | s when peak_adder_bits s <= adder_bits ->
          { schedule = s; adder_bit_budget = adder_bits; latency }
      | _ -> search (latency + 1)
      | exception Frag_sched.Infeasible _ -> search (latency + 1)
  in
  search lower

(** The area/latency trade curve: smallest achieved latency for each
    budget in [budgets]. *)
let sweep graph ~budgets =
  List.filter_map
    (fun adder_bits ->
      match schedule graph ~adder_bits with
      | t -> Some (adder_bits, t.latency, Frag_sched.used_delta t.schedule)
      | exception Infeasible _ -> None)
    budgets
