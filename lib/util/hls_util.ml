(** Small shared helpers used across the HLS libraries.

    Nothing here is specific to high-level synthesis; these are the generic
    integer / list / formatting utilities the rest of the code base leans on
    so that the domain modules stay focused on their algorithms. *)

module Int_math = struct
  (** Integer arithmetic helpers for widths, cycles and gate counts. *)

  let ceil_div a b =
    if b <= 0 then invalid_arg "Int_math.ceil_div: non-positive divisor";
    if a <= 0 then 0 else (a + b - 1) / b

  (** [clog2 n] is the number of bits needed to represent [n] distinct
      values, i.e. ceil(log2 n); [clog2 1 = 0]. *)
  let clog2 n =
    if n <= 0 then invalid_arg "Int_math.clog2: non-positive argument";
    let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
    go 0 1

  (** [bits_for_value v] is the number of bits needed to hold the unsigned
      value [v]; [bits_for_value 0 = 1]. *)
  let bits_for_value v =
    if v < 0 then invalid_arg "Int_math.bits_for_value: negative value";
    if v = 0 then 1
    else
      let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
      go 0 v

  let clamp ~lo ~hi v = max lo (min hi v)

  let pow2 n =
    if n < 0 || n > 62 then invalid_arg "Int_math.pow2: out of range";
    1 lsl n
end

module List_ext = struct
  let rec last = function
    | [] -> invalid_arg "List_ext.last: empty list"
    | [ x ] -> x
    | _ :: tl -> last tl

  let sum = List.fold_left ( + ) 0
  let sum_by f = List.fold_left (fun acc x -> acc + f x) 0

  let max_by f = function
    | [] -> invalid_arg "List_ext.max_by: empty list"
    | x :: tl ->
        List.fold_left (fun acc y -> if f y > f acc then y else acc) x tl

  let min_by f = function
    | [] -> invalid_arg "List_ext.min_by: empty list"
    | x :: tl ->
        List.fold_left (fun acc y -> if f y < f acc then y else acc) x tl

  (** [range a b] is [a; a+1; ...; b-1] (empty when [b <= a]). *)
  let range a b = List.init (max 0 (b - a)) (fun i -> a + i)

  (** Group consecutive elements for which [eq] holds into runs,
      preserving order. *)
  let group_runs ~eq l =
    let close run acc = if run = [] then acc else List.rev run :: acc in
    let rec go run acc = function
      | [] -> List.rev (close run acc)
      | x :: tl -> (
          match run with
          | [] -> go [ x ] acc tl
          | y :: _ when eq y x -> go (x :: run) acc tl
          | _ -> go [ x ] (close run acc) tl)
    in
    go [] [] l

  (** Stable deduplication preserving the first occurrence. *)
  let dedup ~eq l =
    let rec go acc = function
      | [] -> List.rev acc
      | x :: tl ->
          if List.exists (eq x) acc then go acc tl else go (x :: acc) tl
    in
    go [] l

  let take n l =
    let rec go n acc = function
      | [] -> List.rev acc
      | _ when n <= 0 -> List.rev acc
      | x :: tl -> go (n - 1) (x :: acc) tl
    in
    go n [] l
end

module Pretty = struct
  (** Formatting helpers for the textual reports the benches print. *)

  let pct ~from ~to_ =
    if from = 0. then 0. else (from -. to_) /. from *. 100.

  let pp_pct ppf v = Fmt.pf ppf "%.2f %%" v
  let pp_ns ppf v = Fmt.pf ppf "%.2f ns" v
  let pp_gates ppf v = Fmt.pf ppf "%d gates" v

  (** Render a table with a header row; columns are padded to the widest
      cell. Used by the bench harness to print the paper's tables. *)
  let render_table ~header rows =
    let all = header :: rows in
    let ncols =
      List.fold_left (fun acc r -> max acc (List.length r)) 0 all
    in
    let widths = Array.make ncols 0 in
    List.iter
      (fun row ->
        List.iteri
          (fun i cell ->
            if i < ncols then
              widths.(i) <- max widths.(i) (String.length cell))
          row)
      all;
    let buf = Buffer.create 256 in
    let render_row row =
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf cell;
          if i < ncols - 1 then
            Buffer.add_string buf
              (String.make (widths.(i) - String.length cell) ' '))
        row;
      Buffer.add_char buf '\n'
    in
    render_row header;
    Buffer.add_string buf
      (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
    Buffer.add_char buf '\n';
    List.iter render_row rows;
    Buffer.contents buf
end

(** Deterministic splittable PRNG used by workload generators so that
    benchmark DFGs are reproducible run to run. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int (seed lxor 0x9E3779B9) }

  (* SplitMix64 step; plenty for generating reproducible workloads. *)
  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (** [int t bound] draws uniformly from [0, bound). *)
  let int t bound =
    if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
    Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int)
                    (Int64.of_int bound))

  let bool t = Int64.logand (next t) 1L = 1L

  (** [pick t l] draws a uniformly random element of [l]. *)
  let pick t l =
    match l with
    | [] -> invalid_arg "Prng.pick: empty list"
    | _ -> List.nth l (int t (List.length l))
end

(** Typed failure taxonomy for synthesis flows.

    A design-space sweep sees four kinds of trouble, and they deserve
    different treatment: an [Infeasible] point can never succeed (retrying
    burns cycles for nothing), a [Timeout] or [Resource] exhaustion is
    load-dependent and worth retrying, and an [Internal] exception is a
    bug or a transient environmental fault — retried a bounded number of
    times, then reported.  Producers (the pipeline, the fragment planner,
    the schedulers) register classifiers here so that consumers (the job
    pool, the sweep driver) can route outcomes without knowing every
    exception type in the stack. *)
module Failure = struct
  type t =
    | Infeasible of string  (** the design point cannot exist; never retry *)
    | Timeout of float  (** seconds the job had been running *)
    | Resource of string  (** memory/stack exhaustion; retryable *)
    | Internal of exn  (** unclassified exception; retryable, bounded *)

  (** Raised by flows that want to signal an already classified fault. *)
  exception Flow_failure of t

  (** An [Internal] fault reconstructed from a wire message or journal —
      the original exception no longer exists in this process.  Its
      registered printer prints the carried text verbatim, so decoding a
      serialized failure and re-serializing it is lossless. *)
  exception Remote of string

  let () =
    Printexc.register_printer (function Remote m -> Some m | _ -> None)

  let to_string = function
    | Infeasible m -> "infeasible: " ^ m
    | Timeout s -> Printf.sprintf "timed out after %.2f s" s
    | Resource m -> "resource exhausted: " ^ m
    | Internal e -> Printexc.to_string e

  (** Short tag for tables, journals and JSON. *)
  let class_name = function
    | Infeasible _ -> "infeasible"
    | Timeout _ -> "timeout"
    | Resource _ -> "resource"
    | Internal _ -> "internal"

  (** Transient faults worth re-dispatching; [Infeasible] is permanent. *)
  let retryable = function
    | Infeasible _ -> false
    | Timeout _ | Resource _ | Internal _ -> true

  (** Documented process exit codes, one per failure class, shared by
      [hlsopt] and the api error surface so scripts can tell an
      impossible design point from a tool fault: infeasible 3, timeout 4,
      resource 5, internal 7.  (0 is success, 2 a usage error, 6 an
      overloaded server — see [Hls_api.Error.exit_code]; 1 is left to the
      shell and 124/125 to cmdliner.) *)
  let exit_code = function
    | Infeasible _ -> 3
    | Timeout _ -> 4
    | Resource _ -> 5
    | Internal _ -> 7

  (* Registered exception classifiers, consulted in registration order.
     Registration happens at module-initialization time (before any worker
     domain exists), so the unsynchronized ref is safe: domains only read. *)
  let classifiers : (exn -> t option) list ref = ref []
  let register_classifier f = classifiers := !classifiers @ [ f ]

  let classify_exn = function
    | Flow_failure f -> f
    | Out_of_memory -> Resource "out of memory"
    | Stack_overflow -> Resource "stack overflow"
    | e ->
        let rec go = function
          | [] -> Internal e
          | f :: rest -> ( match f e with Some t -> t | None -> go rest)
        in
        go !classifiers
end

(** Fault-injection hooks for resilience tests.

    Compiled in always, inert unless armed: every probe first checks a
    single mutable record that normal runs never set, so the cost on the
    hot path is one load and one branch.  Tests (and [make fault-smoke],
    via the [HLS_FAULTS] environment variable) arm a fault, run the stack
    end to end, and assert that retry / journal replay / degradation put
    the sweep back together. *)
module Faults = struct
  (** The exception injected faults raise; classified as [Internal]
      (retryable) by {!Failure.classify_exn}. *)
  exception Injected of string

  type spec = {
    fail_job : (int * int) option;
        (** [(n, k)]: job index [n] raises on its first [k] executions *)
    delay_job : (int option * float) option;
        (** delay job [Some n] (or every job, [None]) by [s] seconds *)
    corrupt_writes : bool;  (** garble bytes written by the cache *)
    die_before_rename : bool;
        (** [exit 42] between writing a store and renaming it into place *)
    drop_conn : int option;
        (** close the [n]-th accepted connection (1-based) right away *)
    stall_read : float option;
        (** sleep [s] seconds before every server-side socket read *)
    truncate_write : int option;
        (** send only half of the [n]-th network response line, then
            drop the connection *)
    slow_accept : float option;  (** sleep [s] seconds before accepting *)
  }

  let inert =
    {
      fail_job = None;
      delay_job = None;
      corrupt_writes = false;
      die_before_rename = false;
      drop_conn = None;
      stall_read = None;
      truncate_write = None;
      slow_accept = None;
    }

  let spec = ref inert
  let mu = Mutex.create ()
  let exec_counts : (int, int) Hashtbl.t = Hashtbl.create 7
  let accept_count = ref 0
  let net_write_count = ref 0

  let arm s =
    Mutex.lock mu;
    Hashtbl.reset exec_counts;
    accept_count := 0;
    net_write_count := 0;
    spec := s;
    Mutex.unlock mu

  let disarm () = arm inert
  let armed () = !spec != inert && !spec <> inert

  (** Probe: called with the job's stable index before it executes.
      May sleep ([delay_job]) or raise {!Injected} ([fail_job]). *)
  let on_job job =
    let s = !spec in
    (match s.delay_job with
    | Some (which, secs)
      when (match which with None -> true | Some j -> j = job) ->
        Unix.sleepf secs
    | _ -> ());
    match s.fail_job with
    | Some (n, k) when n = job ->
        Mutex.lock mu;
        let c = Option.value (Hashtbl.find_opt exec_counts job) ~default:0 + 1 in
        Hashtbl.replace exec_counts job c;
        Mutex.unlock mu;
        if c <= k then
          raise (Injected (Printf.sprintf "injected fault: job %d attempt %d" job c))
    | _ -> ()

  (** Probe: bytes about to be written by a store; garbled when
      [corrupt_writes] is armed. *)
  let on_write bytes =
    if not !spec.corrupt_writes || String.length bytes = 0 then bytes
    else
      let b = Bytes.of_string bytes in
      let n = Bytes.length b in
      Bytes.blit_string "#corrupt#" 0 b (n / 2) (min 9 (n - (n / 2)));
      Bytes.to_string b

  (** Probe: called between writing a temp store and renaming it into
      place; simulates a crash at the worst moment. *)
  let before_rename () =
    if !spec.die_before_rename then begin
      prerr_endline "hls-faults: dying before rename (injected)";
      exit 42
    end

  (* --- network fault modes (servers and routers probe these) --- *)

  (** Probe: a listener is about to accept a connection.  May sleep
      ([slow_accept]); returns [true] when the connection just accepted
      (1-based count) should be dropped on the floor ([drop_conn]). *)
  let on_accept () =
    let s = !spec in
    (match s.slow_accept with Some secs -> Unix.sleepf secs | None -> ());
    match s.drop_conn with
    | None -> false
    | Some n ->
        Mutex.lock mu;
        incr accept_count;
        let c = !accept_count in
        Mutex.unlock mu;
        c = n

  (** Probe: a server is about to read from a connection.  May sleep
      ([stall_read]), simulating a stalled peer or saturated link. *)
  let on_read () =
    match !spec.stall_read with
    | Some secs -> Unix.sleepf secs
    | None -> ()

  (** Probe: a response line is about to go out on a connection.
      [Some k] means: send only the first [k] bytes of this [len]-byte
      line, then kill the connection ([truncate_write], counted
      1-based across the process). *)
  let on_net_write ~len =
    match !spec.truncate_write with
    | None -> None
    | Some n ->
        Mutex.lock mu;
        incr net_write_count;
        let c = !net_write_count in
        Mutex.unlock mu;
        if c = n then Some (len / 2) else None

  (** Arm from an environment variable (default [HLS_FAULTS]); inert when
      unset.  Comma-separated terms:
      [fail-job=N:K], [delay-job=S], [delay-job=N:S], [corrupt-writes],
      [die-before-rename], [drop-conn=N], [stall-read=S],
      [truncate-write=N], [slow-accept=S].  Unknown terms raise
      [Invalid_argument]. *)
  let arm_from_env ?(var = "HLS_FAULTS") () =
    match Sys.getenv_opt var with
    | None | Some "" -> ()
    | Some v ->
        let s =
          List.fold_left
            (fun s term ->
              match String.split_on_char '=' (String.trim term) with
              | [ "corrupt-writes" ] -> { s with corrupt_writes = true }
              | [ "die-before-rename" ] -> { s with die_before_rename = true }
              | [ "fail-job"; nk ] -> (
                  match String.split_on_char ':' nk with
                  | [ n; k ] ->
                      { s with
                        fail_job = Some (int_of_string n, int_of_string k) }
                  | _ -> invalid_arg ("Faults.arm_from_env: " ^ term))
              | [ "delay-job"; spec ] -> (
                  match String.split_on_char ':' spec with
                  | [ secs ] ->
                      { s with delay_job = Some (None, float_of_string secs) }
                  | [ n; secs ] ->
                      { s with
                        delay_job =
                          Some (Some (int_of_string n), float_of_string secs) }
                  | _ -> invalid_arg ("Faults.arm_from_env: " ^ term))
              | [ "drop-conn"; n ] ->
                  { s with drop_conn = Some (int_of_string n) }
              | [ "stall-read"; secs ] ->
                  { s with stall_read = Some (float_of_string secs) }
              | [ "truncate-write"; n ] ->
                  { s with truncate_write = Some (int_of_string n) }
              | [ "slow-accept"; secs ] ->
                  { s with slow_accept = Some (float_of_string secs) }
              | _ -> invalid_arg ("Faults.arm_from_env: " ^ term))
            inert
            (String.split_on_char ',' v)
        in
        arm s
end

module Csd = struct
  (** Canonical signed-digit recoding of integer constants.

      A constant multiplier is a network of shift-adds, one per nonzero CSD
      digit; CSD guarantees no two adjacent digits are nonzero, so an
      n-bit constant has at most ceil((n+1)/2) digits and typically ~n/3.
      Used to lower multiplications by constants into a handful of
      additions (as any synthesis tool does for filter coefficients). *)

  (** [digits v] returns the CSD digits of [v] as (bit position, negative?)
      pairs, least significant first.  [digits 0 = []];
      Σ ±2^pos reconstructs [v] exactly. *)
  let digits v =
    let negative = v < 0 in
    let v = abs v in
    (* Standard recoding: examine bits of v + carry; a run of ones becomes
       +2^(k+1) - 2^j. *)
    let rec go pos v acc =
      if v = 0 then List.rev acc
      else if v land 1 = 0 then go (pos + 1) (v lsr 1) acc
      else if v land 3 = 3 then
        (* ...11 -> -1 here, carry up. *)
        go (pos + 1) ((v lsr 1) + 1) ((pos, true) :: acc)
      else go (pos + 1) (v lsr 1) ((pos, false) :: acc)
    in
    let ds = go 0 v [] in
    if negative then List.map (fun (p, neg) -> (p, not neg)) ds else ds

  let digit_count v = List.length (digits v)

  (** Reconstruct the integer from its digits (used by tests). *)
  let value ds =
    List.fold_left
      (fun acc (pos, neg) ->
        let term = 1 lsl pos in
        if neg then acc - term else acc + term)
      0 ds
end
