(** Per-bit dependency and delay model.

    The paper measures all delays in δ — the delay of one chained 1-bit
    addition — and ignores non-additive glue (§3.2: "non-additive operations
    are not considered").  This module assigns to every result bit of every
    node a *cost* in δ and the set of bits it depends on:

    - an [Add] bit at a position covered by at least one operand bit costs
      1 δ and depends on the operand bits at that position plus the previous
      result bit (the carry);
    - an [Add] bit above all operand positions is pure carry propagation: it
      costs 0 δ and depends only on the previous result bit (the carry-out
      of a ripple adder settles together with the top sum bit);
    - glue logic ([Not], [And], [Gate], [Mux], [Concat], …) costs 0 δ and
      simply forwards its operands' arrival times;
    - pre-kernel behavioural kinds ([Sub], [Mul], comparisons, [Max]/[Min])
      get conservative additive models so that timing is still defined on
      raw specifications, although the flow normally runs timing after
      kernel extraction when only additions and glue remain. *)

open Hls_dfg.Types
module Operand = Hls_dfg.Operand
module Graph = Hls_dfg.Graph

(** A dependency of one result bit. *)
type dep =
  | Self of int  (** earlier bit of the same node (carry chain) *)
  | Bit of source * int  (** bit [i] of an operand source *)

(** [operand_bit o pos] resolves which source bit feeds position [pos] of a
    computation using operand [o], honouring the operand's extension:
    [None] for zero-extension padding (a constant 0, no dependency). *)
let operand_bit (o : operand) pos =
  if pos < Operand.width o then Some (Bit (o.src, o.lo + pos))
  else match o.ext with Zext -> None | Sext -> Some (Bit (o.src, o.hi))

let all_operand_bits (o : operand) =
  List.map (fun i -> Bit (o.src, o.lo + i))
    (Hls_util.List_ext.range 0 (Operand.width o))

let carry_dep pos = if pos > 0 then [ Self (pos - 1) ] else []

(* Positions covered by real operand bits of a 2/3-operand additive node;
   above them the result is pure carry ripple. *)
let additive_cover operands =
  List.fold_left
    (fun acc (o : operand) ->
      match o.ext with
      | Sext -> max_int (* sign extension keeps feeding bits upward *)
      | Zext -> max acc (Operand.width o))
    0 operands

(** [bit_deps graph node pos] returns [(cost_delta, deps)] for result bit
    [pos] of [node]. *)
let bit_deps _graph (n : node) pos =
  let ops = Array.of_list n.operands in
  let op i = ops.(i) in
  let two_op_adder ~extra_lsb_dep operands =
    let cover = additive_cover operands in
    if pos < cover then
      let deps =
        List.filter_map (fun o -> operand_bit o pos) operands
        @ carry_dep pos
        @ (if pos = 0 then extra_lsb_dep else [])
      in
      (1, deps)
    else (0, carry_dep pos)
  in
  match n.kind with
  | Add ->
      let a_b, cin =
        match n.operands with
        | [ a; b ] -> ([ a; b ], [])
        | [ a; b; c ] -> ([ a; b ], [ Bit (c.src, c.lo) ])
        | _ -> invalid_arg "Bitdep: malformed add"
      in
      two_op_adder ~extra_lsb_dep:cin a_b
  | Sub | Neg ->
      (* a - b ripples exactly like a + not b + 1; the inverter is glue. *)
      two_op_adder ~extra_lsb_dep:[] n.operands
  | Mul ->
      (* Array-multiplier model: bit [pos] sees every input bit at positions
         <= pos and ripples off the previous product bit, 1 δ per bit. *)
      let deps =
        List.concat_map
          (fun o ->
            List.filter_map
              (fun p -> operand_bit o p)
              (Hls_util.List_ext.range 0 (min (pos + 1) (Operand.width o))))
          n.operands
        @ carry_dep pos
      in
      (1, Hls_util.List_ext.dedup ~eq:( = ) deps)
  | Lt | Le | Gt | Ge | Eq | Neq ->
      (* One full borrow ripple across the widest operand. *)
      let w =
        List.fold_left (fun acc o -> max acc (Operand.width o)) 1 n.operands
      in
      (w, List.concat_map all_operand_bits n.operands)
  | Max | Min ->
      (* Compare (full ripple) then steer: every result bit waits for the
         comparison plus its own operand bits. *)
      let w =
        List.fold_left (fun acc o -> max acc (Operand.width o)) 1 n.operands
      in
      let steer = List.filter_map (fun o -> operand_bit o pos) n.operands in
      (w, List.concat_map all_operand_bits n.operands @ steer)
  | Not | Wire -> (0, Option.to_list (operand_bit (op 0) pos))
  | And | Or | Xor ->
      (0, List.filter_map (fun o -> operand_bit o pos) n.operands)
  | Gate ->
      let ctrl = op 1 in
      ( 0,
        Option.to_list (operand_bit (op 0) pos) @ [ Bit (ctrl.src, ctrl.lo) ]
      )
  | Mux ->
      let c = op 0 in
      ( 0,
        Bit (c.src, c.lo)
        :: (Option.to_list (operand_bit (op 1) pos)
           @ Option.to_list (operand_bit (op 2) pos)) )
  | Concat ->
      let rec find offset = function
        | [] -> []
        | o :: tl ->
            let w = Operand.width o in
            if pos < offset + w then [ Bit (o.src, o.lo + (pos - offset)) ]
            else find (offset + w) tl
      in
      (0, find 0 n.operands)
  | Reduce_or -> (0, all_operand_bits (op 0))

(** True when this node kind contributes δ cost (is implemented on the
    adder datapath rather than as routing / random logic). *)
let is_timed (n : node) =
  match n.kind with
  | Add | Sub | Neg | Mul | Lt | Le | Gt | Ge | Eq | Neq | Max | Min -> true
  | Not | And | Or | Xor | Gate | Mux | Concat | Reduce_or | Wire -> false
