(** Backward bit-level deadline (ALAP) analysis.

    Given a total budget of [total_slots] = λ · n_bits δ units, the deadline
    of a result bit is the latest slot at which it may be produced while
    every consumer — including the carry chain towards its own upper bits —
    can still meet the overall deadline.  A consumer bit with cost c needs
    its dependencies ready c slots earlier; registering across a cycle
    boundary never relaxes this (a value finished in slot s of cycle k is
    available from slot s+1 onwards, or from the start of any later cycle,
    both of which the uniform [l' - cost'] bound captures).

    The latest cycle a bit can be produced in is [ceil(deadline / n_bits)],
    mirroring {!Arrival.asap_cycle}. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph

type t = {
  total_slots : int;
  slots : int array array;  (** [slots.(id).(bit)] = deadline slot in δ *)
}

let init_slots ?caps graph ~total_slots =
  if total_slots < 0 then invalid_arg "Deadline.compute: negative budget";
  let n_nodes = Graph.node_count graph in
  let cap =
    match caps with
    | None -> fun _ _ -> total_slots
    | Some f -> fun id bit -> min total_slots (f id bit)
  in
  Array.init n_nodes (fun id ->
      Array.init (Graph.node graph id).width (fun bit -> cap id bit))

(** Reverse sweep over a prebuilt net: flat-array iteration, no per-bit
    allocation. *)
let of_net ?caps (net : Bitnet.t) ~total_slots =
  let graph = net.Bitnet.graph in
  let slots = init_slots ?caps graph ~total_slots in
  let n_nodes = Graph.node_count graph in
  (* Reverse topological sweep; within a node, upper bits first so the carry
     chain constraint flows downward. *)
  for id = n_nodes - 1 downto 0 do
    let self = slots.(id) in
    let base = net.Bitnet.bit_base.(id) in
    for pos = Array.length self - 1 downto 0 do
      let b = base + pos in
      let bound = self.(pos) - net.Bitnet.cost.(b) in
      for k = net.Bitnet.dep_off.(b) to net.Bitnet.dep_off.(b + 1) - 1 do
        let d = net.Bitnet.deps.(k) in
        if Bitnet.dep_is_self d then begin
          let j = Bitnet.dep_self_bit d in
          if bound < self.(j) then self.(j) <- bound
        end
        else begin
          let row = slots.(Bitnet.dep_node_id d) in
          let i = Bitnet.dep_node_bit d in
          if bound < row.(i) then row.(i) <- bound
        end
      done
    done
  done;
  { total_slots; slots }

(** [compute graph ~total_slots ?caps] — [caps id bit] optionally tightens
    the initial deadline of individual bits below the global budget (used
    when fragment windows constrain bits beyond the pure dataflow ALAP,
    e.g. under the coalesced fragmentation policy). *)
let compute ?caps graph ~total_slots =
  of_net ?caps (Bitnet.build graph) ~total_slots

(** Direct {!Bitdep.bit_deps} evaluation, kept as the executable reference
    for property tests and the benchmark baseline. *)
let compute_reference ?caps graph ~total_slots =
  let slots = init_slots ?caps graph ~total_slots in
  let n_nodes = Graph.node_count graph in
  let tighten src bit bound =
    match src with
    | Input _ | Const _ -> ()
    | Node id -> slots.(id).(bit) <- min slots.(id).(bit) bound
  in
  for id = n_nodes - 1 downto 0 do
    let n = Graph.node graph id in
    for pos = n.width - 1 downto 0 do
      let cost, deps = Bitdep.bit_deps graph n pos in
      let bound = slots.(id).(pos) - cost in
      List.iter
        (function
          | Bitdep.Self j -> slots.(id).(j) <- min slots.(id).(j) bound
          | Bitdep.Bit (src, i) -> tighten src i bound)
        deps
    done
  done;
  { total_slots; slots }

let slot t ~id ~bit = t.slots.(id).(bit)

(** Latest cycle (1-based) bit [bit] of node [id] may be computed in, under
    a chaining budget of [n_bits] δ per cycle. *)
let alap_cycle t ~n_bits ~id ~bit =
  if n_bits < 1 then invalid_arg "Deadline.alap_cycle: n_bits must be >= 1";
  max 1 (Hls_util.Int_math.ceil_div t.slots.(id).(bit) n_bits)

(** First bit whose deadline precedes its arrival, if any — the witness
    that a budget is infeasible. *)
let feasible_witness arrival t =
  let n = Array.length t.slots in
  let rec scan id bit =
    if id >= n then None
    else
      let slots = t.slots.(id) in
      if bit >= Array.length slots then scan (id + 1) 0
      else if slots.(bit) < Arrival.slot arrival ~id ~bit then Some (id, bit)
      else scan id (bit + 1)
  in
  scan 0 0

(** A schedule is feasible iff no bit's deadline precedes its arrival
    (short-circuits on the first violation). *)
let feasible arrival t = feasible_witness arrival t = None
