(** Backward bit-level deadline (ALAP) analysis.

    Given a total budget of [total_slots] = λ · n_bits δ units, the deadline
    of a result bit is the latest slot at which it may be produced while
    every consumer — including the carry chain towards its own upper bits —
    can still meet the overall deadline.  A consumer bit with cost c needs
    its dependencies ready c slots earlier; registering across a cycle
    boundary never relaxes this (a value finished in slot s of cycle k is
    available from slot s+1 onwards, or from the start of any later cycle,
    both of which the uniform [l' - cost'] bound captures).

    The latest cycle a bit can be produced in is [ceil(deadline / n_bits)],
    mirroring {!Arrival.asap_cycle}.

    Like {!Arrival}, slots live in one flat [bit_base]-indexed array and
    the kernel runs as a wavefront over the net's topological levels — in
    reverse, and {e pulling} through the transpose net ([rdeps]) instead of
    pushing: when a bit is pulled, every one of its consumers is already
    final (cross-node consumers sit at strictly higher levels; the only
    same-node consumer of bit [pos] is the carry into [pos + 1], pulled
    just before).  Pull order is what makes the per-level early exit of
    {!of_net_check} and the region-parallel {!of_net_parallel} possible:
    a level's slots are final the moment the level is swept. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph

type t = {
  total_slots : int;
  bit_base : int array;
      (** length [node_count + 1]: flat index of bit 0 of each node (the
          {!Bitnet} layout) *)
  slots : int array;  (** per flat bit: deadline slot in δ *)
}

(* Flat initial deadlines: one [Array.make] plus, only when [caps] is
   given, a tightening pass — no per-node closure allocation (the nested
   [Array.init] of the original layout dominated small-budget runs). *)
let init_slots ?caps bit_base ~total_slots =
  if total_slots < 0 then invalid_arg "Deadline.compute: negative budget";
  let n_nodes = Array.length bit_base - 1 in
  let slots = Array.make bit_base.(n_nodes) total_slots in
  (match caps with
  | None -> ()
  | Some f ->
      for id = 0 to n_nodes - 1 do
        let base = bit_base.(id) in
        for bit = 0 to bit_base.(id + 1) - base - 1 do
          let c = f id bit in
          if c < total_slots then slots.(base + bit) <- c
        done
      done);
  slots

(* Settle every bit of node [id], MSB to LSB, by pulling over the
   transpose net: each consumer's slot is already final (higher level, or
   the carry bit just above), so one min-fold per bit suffices. *)
let sweep_node_rev (net : Bitnet.t) slots id =
  let rdep_off = net.Bitnet.rdep_off in
  let rdeps = net.Bitnet.rdeps in
  let cost = net.Bitnet.cost in
  for b = net.Bitnet.bit_base.(id + 1) - 1 downto net.Bitnet.bit_base.(id) do
    let dl = ref slots.(b) in
    for k = rdep_off.(b) to rdep_off.(b + 1) - 1 do
      let c = rdeps.(k) in
      let bound = slots.(c) - cost.(c) in
      if bound < !dl then dl := bound
    done;
    slots.(b) <- !dl
  done

(** Reverse level-ordered wavefront over a prebuilt net: flat slot array,
    pull-based, no per-bit allocation. *)
let of_net ?caps (net : Bitnet.t) ~total_slots =
  let bit_base = net.Bitnet.bit_base in
  let slots = init_slots ?caps bit_base ~total_slots in
  let n_levels = Bitnet.n_levels net in
  for l = n_levels - 1 downto 0 do
    for i = net.Bitnet.level_off.(l) to net.Bitnet.level_off.(l + 1) - 1 do
      sweep_node_rev net slots net.Bitnet.level_nodes.(i)
    done
  done;
  if n_levels > 0 then Hls_telemetry.count ~n:n_levels "timing.rounds";
  { total_slots; bit_base; slots }

(** Like {!of_net}, but independent net regions are distributed over
    [workers] pool domains; bit-identical to the serial sweep (regions
    touch disjoint slices of the shared slot array).  Falls back to
    {!of_net} for single-region nets or [workers <= 1]. *)
let of_net_parallel ?caps ?workers (net : Bitnet.t) ~total_slots =
  let workers =
    match workers with Some w -> w | None -> Hls_pool.default_workers ()
  in
  let n_regions = Bitnet.n_regions net in
  if workers <= 1 || n_regions <= 1 then of_net ?caps net ~total_slots
  else begin
    let bit_base = net.Bitnet.bit_base in
    let slots = init_slots ?caps bit_base ~total_slots in
    let sweep_region c () =
      (* Descending id within the region is reverse-topological there. *)
      for i = net.Bitnet.comp_off.(c + 1) - 1 downto net.Bitnet.comp_off.(c) do
        sweep_node_rev net slots net.Bitnet.comp_nodes.(i)
      done
    in
    let outcomes = Hls_pool.run ~workers (Array.init n_regions sweep_region) in
    let all_done =
      Array.for_all
        (fun o -> match o with Hls_pool.Done () -> true | _ -> false)
        outcomes
    in
    if all_done then { total_slots; bit_base; slots }
    else
      (* A region job died mid-sweep (fault injection is the only
         realistic cause); restart from fresh initial deadlines. *)
      of_net ?caps net ~total_slots
  end

exception Violated of int

(** Monotone early-exit variant: compute the deadlines level by level and
    validate each level against [arrival] the moment it becomes final.
    An infeasible budget violates first at the {e deepest} nodes — exactly
    the ones the reverse wavefront settles first — so hopeless budgets
    bail after a fraction of the sweep.  [Ok t] means every bit was
    checked: the budget is feasible, no separate {!feasible} pass
    needed. *)
let of_net_check ?caps (net : Bitnet.t) ~total_slots ~arrival =
  let bit_base = net.Bitnet.bit_base in
  let slots = init_slots ?caps bit_base ~total_slots in
  let arr = Arrival.flat_slots arrival in
  let n_levels = Bitnet.n_levels net in
  let rounds = ref 0 in
  let result =
    try
      for l = n_levels - 1 downto 0 do
        incr rounds;
        for i = net.Bitnet.level_off.(l) to net.Bitnet.level_off.(l + 1) - 1 do
          sweep_node_rev net slots net.Bitnet.level_nodes.(i)
        done;
        for i = net.Bitnet.level_off.(l) to net.Bitnet.level_off.(l + 1) - 1 do
          let id = net.Bitnet.level_nodes.(i) in
          for b = bit_base.(id) to bit_base.(id + 1) - 1 do
            if slots.(b) < arr.(b) then raise (Violated b)
          done
        done
      done;
      Ok { total_slots; bit_base; slots }
    with Violated b ->
      let id = ref 0 in
      while bit_base.(!id + 1) <= b do
        incr id
      done;
      Error (!id, b - bit_base.(!id))
  in
  if !rounds > 0 then Hls_telemetry.count ~n:!rounds "timing.rounds";
  result

(** [compute graph ~total_slots ?caps] — [caps id bit] optionally tightens
    the initial deadline of individual bits below the global budget (used
    when fragment windows constrain bits beyond the pure dataflow ALAP,
    e.g. under the coalesced fragmentation policy). *)
let compute ?caps graph ~total_slots =
  of_net ?caps (Bitnet.build graph) ~total_slots

let bases_of_graph graph =
  let n_nodes = Graph.node_count graph in
  let bit_base = Array.make (n_nodes + 1) 0 in
  for id = 0 to n_nodes - 1 do
    bit_base.(id + 1) <- bit_base.(id) + (Graph.node graph id).width
  done;
  bit_base

(** Direct {!Bitdep.bit_deps} evaluation, kept as the executable reference
    for property tests and the benchmark baseline. *)
let compute_reference ?caps graph ~total_slots =
  let bit_base = bases_of_graph graph in
  let slots = init_slots ?caps bit_base ~total_slots in
  let n_nodes = Graph.node_count graph in
  let tighten src bit bound =
    match src with
    | Input _ | Const _ -> ()
    | Node id ->
        let b = bit_base.(id) + bit in
        slots.(b) <- min slots.(b) bound
  in
  for id = n_nodes - 1 downto 0 do
    let n = Graph.node graph id in
    let base = bit_base.(id) in
    for pos = n.width - 1 downto 0 do
      let cost, deps = Bitdep.bit_deps graph n pos in
      let bound = slots.(base + pos) - cost in
      List.iter
        (function
          | Bitdep.Self j -> slots.(base + j) <- min slots.(base + j) bound
          | Bitdep.Bit (src, i) -> tighten src i bound)
        deps
    done
  done;
  { total_slots; bit_base; slots }

let slot t ~id ~bit = t.slots.(t.bit_base.(id) + bit)

(** Latest cycle (1-based) bit [bit] of node [id] may be computed in, under
    a chaining budget of [n_bits] δ per cycle. *)
let alap_cycle t ~n_bits ~id ~bit =
  if n_bits < 1 then invalid_arg "Deadline.alap_cycle: n_bits must be >= 1";
  max 1 (Hls_util.Int_math.ceil_div t.slots.(t.bit_base.(id) + bit) n_bits)

(** First bit whose deadline precedes its arrival, if any — the witness
    that a budget is infeasible.  One flat scan in (node, bit) order over
    the shared layout; the words-swept accounting uses the same
    63-bits-per-word blocking as {!Hls_bitvec.Wordset}. *)
let feasible_witness arrival t =
  let arr = Arrival.flat_slots arrival in
  let n_bits = Array.length t.slots in
  let b = ref 0 in
  while !b < n_bits && t.slots.(!b) >= arr.(!b) do
    incr b
  done;
  if n_bits > 0 then
    Hls_telemetry.count
      ~n:((min !b (n_bits - 1) / Hls_bitvec.Wordset.bits_per_word) + 1)
      "timing.words_swept";
  if !b >= n_bits then None
  else begin
    let id = ref 0 in
    while t.bit_base.(!id + 1) <= !b do
      incr id
    done;
    Some (!id, !b - t.bit_base.(!id))
  end

(** A schedule is feasible iff no bit's deadline precedes its arrival
    (short-circuits on the first violation). *)
let feasible arrival t = feasible_witness arrival t = None
