(** Forward bit-level arrival analysis (the "rippling" model of Figs. 1e /
    3b).

    The arrival slot of a result bit is the number of δ units after the
    start of execution at which that bit is stable, assuming unlimited
    chaining (no cycle boundaries).  Primary inputs and constants are stable
    at slot 0.  With a per-cycle chaining budget of [n_bits] δ, the earliest
    cycle a bit can be produced in is simply [ceil(slot / n_bits)]:
    registering a value at a cycle boundary never makes it available earlier
    than its combinational arrival, so the unconstrained arrival time *is*
    the bit-level ASAP schedule.

    Slots live in one flat [bit_base]-indexed array sharing the net's
    layout, and the kernel advances as a wavefront over the net's
    topological levels: every node of a level reads only slots settled by
    earlier levels (or its own carry chain), which is also what lets
    {!of_net_parallel} run independent net regions on separate domains
    against the same array. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph

type t = {
  bit_base : int array;
      (** length [node_count + 1]: flat index of bit 0 of each node (the
          {!Bitnet} layout) *)
  slots : int array;  (** per flat bit: arrival slot in δ *)
}

let source_slot t = function
  | Input _ | Const _ -> fun _ -> 0
  | Node id -> fun bit -> t.slots.(t.bit_base.(id) + bit)

let dep_slot t ~base = function
  | Bitdep.Self j -> t.slots.(base + j)
  | Bitdep.Bit (src, i) -> source_slot t src i

(* Settle every bit of node [id], LSB to MSB: cross-node sources are
   already final (earlier wavefront level), and the only same-node
   sources are carry bits below [pos]. *)
let sweep_node (net : Bitnet.t) slots id =
  let dep_off = net.Bitnet.dep_off in
  let flat_deps = net.Bitnet.flat_deps in
  let cost = net.Bitnet.cost in
  for b = net.Bitnet.bit_base.(id) to net.Bitnet.bit_base.(id + 1) - 1 do
    let ready = ref 0 in
    for k = dep_off.(b) to dep_off.(b + 1) - 1 do
      let s = slots.(flat_deps.(k)) in
      if s > !ready then ready := s
    done;
    slots.(b) <- !ready + cost.(b)
  done

(** Level-ordered wavefront over a prebuilt net: one flat slot array, one
    untagged indirection per dependency, no per-bit allocation. *)
let of_net (net : Bitnet.t) =
  let slots = Array.make (Bitnet.total_bits net) 0 in
  let n_levels = Bitnet.n_levels net in
  for l = 0 to n_levels - 1 do
    for i = net.Bitnet.level_off.(l) to net.Bitnet.level_off.(l + 1) - 1 do
      sweep_node net slots net.Bitnet.level_nodes.(i)
    done
  done;
  if n_levels > 0 then Hls_telemetry.count ~n:n_levels "timing.rounds";
  { bit_base = net.Bitnet.bit_base; slots }

(** Like {!of_net}, but independent net regions (weakly-connected
    components) are distributed over [workers] pool domains.  Regions
    write disjoint slices of the shared slot array and read only within
    their own region, so the result is bit-identical to the serial sweep.
    Falls back to {!of_net} when the net has a single region or
    [workers <= 1]. *)
let of_net_parallel ?workers ?pool (net : Bitnet.t) =
  let workers =
    match (workers, pool) with
    | Some w, _ -> w
    | None, Some p -> Hls_pool.Shared.workers p
    | None, None -> Hls_pool.default_workers ()
  in
  let n_regions = Bitnet.n_regions net in
  if workers <= 1 || n_regions <= 1 then of_net net
  else begin
    let slots = Array.make (Bitnet.total_bits net) 0 in
    let sweep_region c () =
      for i = net.Bitnet.comp_off.(c) to net.Bitnet.comp_off.(c + 1) - 1 do
        sweep_node net slots net.Bitnet.comp_nodes.(i)
      done
    in
    let all_done =
      match pool with
      | Some p ->
          (* The shared pool's domains are already up: many requests'
             region batches interleave on one set of workers instead of
             spawning domains per request. *)
          Hls_pool.Shared.run_list p (List.init n_regions sweep_region) = Ok ()
      | None ->
          let outcomes =
            Hls_pool.run ~workers (Array.init n_regions sweep_region)
          in
          Array.for_all
            (fun o -> match o with Hls_pool.Done () -> true | _ -> false)
            outcomes
    in
    if all_done then { bit_base = net.Bitnet.bit_base; slots }
    else
      (* A region job died (fault injection is the only realistic cause);
         the serial sweep is always available. *)
      of_net net
  end

(** Incremental re-timing: arrival slots of [net] given [told], the
    arrival of a net with the identical bit layout whose dependency rows
    differ only at the [dirty] nodes (the {!Bitnet.rebuild_dirty}
    contract).  Nodes are re-swept in wavefront order starting from the
    dirty set; a node whose slots come out unchanged stops the
    propagation, so the work is proportional to the affected cone, not
    the graph.  Bit-identical to [of_net net]. *)
let update_of_net (net : Bitnet.t) told ~dirty =
  let n_nodes = Array.length net.Bitnet.bit_base - 1 in
  let slots = Array.copy told.slots in
  let affected = Array.make (max n_nodes 1) false in
  List.iter
    (fun id -> if id >= 0 && id < n_nodes then affected.(id) <- true)
    dirty;
  let swept = ref 0 in
  (* [level_nodes] is every node in wavefront order: a cross-node
     consumer sits at a strictly higher level than its producer, so
     marking consumers of a changed node always marks nodes not yet
     visited. *)
  for i = 0 to n_nodes - 1 do
    let id = net.Bitnet.level_nodes.(i) in
    if affected.(id) then begin
      incr swept;
      sweep_node net slots id;
      for b = net.Bitnet.bit_base.(id) to net.Bitnet.bit_base.(id + 1) - 1 do
        if slots.(b) <> told.slots.(b) then
          for k = net.Bitnet.rdep_off.(b) to net.Bitnet.rdep_off.(b + 1) - 1 do
            let c = Bitnet.node_of_slot net net.Bitnet.rdeps.(k) in
            if c <> id then affected.(c) <- true
          done
      done
    end
  done;
  if !swept > 0 then Hls_telemetry.count ~n:!swept "timing.incremental_nodes";
  { bit_base = net.Bitnet.bit_base; slots }

let compute graph = of_net (Bitnet.build graph)

let bases_of_graph graph =
  let n_nodes = Graph.node_count graph in
  let bit_base = Array.make (n_nodes + 1) 0 in
  for id = 0 to n_nodes - 1 do
    bit_base.(id + 1) <- bit_base.(id) + (Graph.node graph id).width
  done;
  bit_base

(** Direct {!Bitdep.bit_deps} evaluation, kept as the executable reference
    for property tests and the benchmark baseline. *)
let compute_reference graph =
  let bit_base = bases_of_graph graph in
  let t = { bit_base; slots = Array.make bit_base.(Array.length bit_base - 1) 0 } in
  Graph.iter_nodes
    (fun n ->
      let base = bit_base.(n.id) in
      for pos = 0 to n.width - 1 do
        let cost, deps = Bitdep.bit_deps graph n pos in
        let ready =
          List.fold_left (fun acc d -> max acc (dep_slot t ~base d)) 0 deps
        in
        t.slots.(base + pos) <- ready + cost
      done)
    graph;
  t

(** Arrival slot of one node bit. *)
let slot t ~id ~bit = t.slots.(t.bit_base.(id) + bit)

(** Arrival slot of an operand bit position (before extension). *)
let operand_slot t (o : operand) ~bit = source_slot t o.src (o.lo + bit)

(** The flat [bit_base]-indexed slot array — a read-only view shared with
    the deadline pass for word-blocked feasibility scans. *)
let flat_slots t = t.slots

(** Latest arrival over all bits of all nodes: the critical path length in
    δ (chained 1-bit additions). *)
let critical_delta t = Array.fold_left max 0 t.slots

(** Earliest cycle (1-based) bit [bit] of node [id] can be computed in,
    under a chaining budget of [n_bits] δ per cycle.  Bits arriving at slot
    0 (pure wiring of inputs) belong to cycle 1. *)
let asap_cycle t ~n_bits ~id ~bit =
  if n_bits < 1 then invalid_arg "Arrival.asap_cycle: n_bits must be >= 1";
  let s = t.slots.(t.bit_base.(id) + bit) in
  max 1 (Hls_util.Int_math.ceil_div s n_bits)

let pp ppf t =
  for id = 0 to Array.length t.bit_base - 2 do
    Format.fprintf ppf "n%d:" id;
    for b = t.bit_base.(id) to t.bit_base.(id + 1) - 1 do
      Format.fprintf ppf " %d" t.slots.(b)
    done;
    Format.fprintf ppf "@ "
  done
