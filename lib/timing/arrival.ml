(** Forward bit-level arrival analysis (the "rippling" model of Figs. 1e /
    3b).

    The arrival slot of a result bit is the number of δ units after the
    start of execution at which that bit is stable, assuming unlimited
    chaining (no cycle boundaries).  Primary inputs and constants are stable
    at slot 0.  With a per-cycle chaining budget of [n_bits] δ, the earliest
    cycle a bit can be produced in is simply [ceil(slot / n_bits)]:
    registering a value at a cycle boundary never makes it available earlier
    than its combinational arrival, so the unconstrained arrival time *is*
    the bit-level ASAP schedule. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph

type t = {
  slots : int array array;  (** [slots.(id).(bit)] = arrival slot in δ *)
}

let source_slot t = function
  | Input _ | Const _ -> fun _ -> 0
  | Node id -> fun bit -> t.slots.(id).(bit)

let dep_slot t ~self = function
  | Bitdep.Self j -> self.(j)
  | Bitdep.Bit (src, i) -> source_slot t src i

(** One topological sweep over a prebuilt net: flat-array folds, no per-bit
    allocation. *)
let of_net (net : Bitnet.t) =
  let graph = net.Bitnet.graph in
  let t = { slots = Array.make (Graph.node_count graph) [||] } in
  Graph.iter_nodes
    (fun n ->
      let slots = Array.make n.width 0 in
      let base = net.Bitnet.bit_base.(n.id) in
      for pos = 0 to n.width - 1 do
        let b = base + pos in
        let ready = ref 0 in
        for k = net.Bitnet.dep_off.(b) to net.Bitnet.dep_off.(b + 1) - 1 do
          let d = net.Bitnet.deps.(k) in
          let s =
            if Bitnet.dep_is_self d then slots.(Bitnet.dep_self_bit d)
            else t.slots.(Bitnet.dep_node_id d).(Bitnet.dep_node_bit d)
          in
          if s > !ready then ready := s
        done;
        slots.(pos) <- !ready + net.Bitnet.cost.(b)
      done;
      t.slots.(n.id) <- slots)
    graph;
  t

let compute graph = of_net (Bitnet.build graph)

(** Direct {!Bitdep.bit_deps} evaluation, kept as the executable reference
    for property tests and the benchmark baseline. *)
let compute_reference graph =
  let t = { slots = Array.make (Graph.node_count graph) [||] } in
  Graph.iter_nodes
    (fun n ->
      let slots = Array.make n.width 0 in
      for pos = 0 to n.width - 1 do
        let cost, deps = Bitdep.bit_deps graph n pos in
        let ready =
          List.fold_left (fun acc d -> max acc (dep_slot t ~self:slots d)) 0 deps
        in
        slots.(pos) <- ready + cost
      done;
      t.slots.(n.id) <- slots)
    graph;
  t

(** Arrival slot of one node bit. *)
let slot t ~id ~bit = t.slots.(id).(bit)

(** Arrival slot of an operand bit position (before extension). *)
let operand_slot t (o : operand) ~bit = source_slot t o.src (o.lo + bit)

(** Latest arrival over all bits of all nodes: the critical path length in
    δ (chained 1-bit additions). *)
let critical_delta t =
  Array.fold_left
    (fun acc slots -> Array.fold_left max acc slots)
    0 t.slots

(** Earliest cycle (1-based) bit [bit] of node [id] can be computed in,
    under a chaining budget of [n_bits] δ per cycle.  Bits arriving at slot
    0 (pure wiring of inputs) belong to cycle 1. *)
let asap_cycle t ~n_bits ~id ~bit =
  if n_bits < 1 then invalid_arg "Arrival.asap_cycle: n_bits must be >= 1";
  let s = t.slots.(id).(bit) in
  max 1 (Hls_util.Int_math.ceil_div s n_bits)

let pp ppf t =
  Array.iteri
    (fun id slots ->
      Format.fprintf ppf "n%d: %a@ " id
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           Format.pp_print_int)
        (Array.to_list slots))
    t.slots
