(** Precomputed bit-level dependency net.

    A per-graph, immutable, CSR-style flat encoding of the {!Bitdep}
    dependency model: one pass over the graph materialises every bit's δ
    cost and packed dependency list into int arrays, so the timing passes
    (arrival, deadline, mobility, fragment scheduling) iterate over flat
    memory instead of re-deriving lists per query.  [Input]/[Const] source
    bits are omitted — they are stable at slot 0 and never constrain any
    analysis.  The net is immutable after construction and safe to share
    across domains. *)

type t = {
  graph : Hls_dfg.Graph.t;
  bit_base : int array;
      (** length [node_count + 1]: flat index of bit 0 of each node *)
  cost : int array;  (** per flat bit: δ cost of producing it *)
  costly_prefix : int array;
      (** length [total_bits + 1]: running count of δ-costly bits *)
  dep_off : int array;
      (** length [total_bits + 1]: CSR offsets into [deps] *)
  deps : int array;  (** packed dependencies *)
  flat_deps : int array;
      (** [deps] re-encoded for the wavefront kernels: same [dep_off]
          offsets, each entry the flat [bit_base]-indexed slot of the
          source bit — one load, no tag decode *)
  node_level : int array;
      (** per node: topological level (0 = fed only by inputs/constants
          and its own carry chain) *)
  level_off : int array;
      (** length [n_levels + 1]: CSR offsets into [level_nodes] *)
  level_nodes : int array;
      (** node ids grouped by level, ascending id within a level — the
          wavefront order of the timing kernels *)
  comp_of : int array;  (** per node: weakly-connected region id *)
  comp_off : int array;
      (** length [n_regions + 1]: CSR offsets into [comp_nodes] *)
  comp_nodes : int array;
      (** node ids grouped by region, ascending id within a region (each
          slice is a valid topological order) — the unit of intra-request
          parallelism *)
  rdep_off : int array;
      (** length [total_bits + 1]: CSR offsets into [rdeps] *)
  rdeps : int array;
      (** transpose of [flat_deps]: per flat bit, the flat slots of its
          consumer bits — lets the deadline pass pull instead of push *)
}

(** Build the net in one O(V + E) pass.  Raises [Invalid_argument] if any
    node is wider than the packed encoding allows (2^20 - 1 bits). *)
val build : Hls_dfg.Graph.t -> t

(** [rebuild_dirty old graph ~dirty] rebuilds the net of [graph] after an
    edit confined to the [dirty] node ids, reusing [old] (the net of the
    pre-edit graph).  The dependency model of a node reads only its own
    kind/operands/width, so clean nodes' packed rows are blitted from
    [old] and only dirty nodes re-run the model; the derived structures
    (levels, regions, transpose) are recomputed with cheap O(V + E) int
    passes.  The result is bit-identical to [build graph].

    Returns [None] when the edit changed the node count or any node
    width (the flat layout moved — fall back to {!build}). *)
val rebuild_dirty :
  t -> Hls_dfg.Graph.t -> dirty:Hls_dfg.Types.node_id list -> t option

(** {2 Packed-dependency accessors}

    A dependency is one int: tag bit 0 distinguishes a same-node carry
    ([Self], tag 0) from an operand bit ([Bit (Node id, i)], tag 1). *)

val dep_is_self : int -> bool

(** Earlier bit of the same node (valid when [dep_is_self]). *)
val dep_self_bit : int -> int

(** Source node id (valid when [not (dep_is_self d)]). *)
val dep_node_id : int -> int

(** Source node bit (valid when [not (dep_is_self d)]). *)
val dep_node_bit : int -> int

(** {2 Queries} *)

val total_bits : t -> int

(** Number of topological levels (0 for the empty graph). *)
val n_levels : t -> int

(** Number of weakly-connected regions (0 for the empty graph). *)
val n_regions : t -> int

val width : t -> id:Hls_dfg.Types.node_id -> int

(** δ cost of producing bit [bit] of node [id]. *)
val cost_of : t -> id:Hls_dfg.Types.node_id -> bit:int -> int

(** δ-costly bits among result bits [lo..hi] (inclusive) of node [id],
    in O(1). *)
val costly_in_range : t -> id:Hls_dfg.Types.node_id -> lo:int -> hi:int -> int

(** δ-costly bits of the whole node, in O(1). *)
val costly_width : t -> id:Hls_dfg.Types.node_id -> int

(** Owning node of a flat [bit_base]-indexed slot, in O(log V) — the
    inverse of [bit_base.(id) + bit]. *)
val node_of_slot : t -> int -> Hls_dfg.Types.node_id

(** Fold over the packed deps of one bit, allocation-free. *)
val fold_deps :
  t -> id:Hls_dfg.Types.node_id -> bit:int -> init:'a ->
  f:('a -> int -> 'a) -> 'a

(** Decode one bit's deps back to {!Bitdep.dep} list form (minus the
    omitted [Input]/[Const] bits) — for tests, not hot paths. *)
val deps_list : t -> id:Hls_dfg.Types.node_id -> bit:int -> Bitdep.dep list
