(** Backward bit-level deadline (ALAP) analysis.

    Given a total budget of [total_slots] = λ·n_bits δ units, the deadline
    of a result bit is the latest slot at which it may be produced while
    every consumer — including the carry chain towards its own upper bits —
    can still meet the overall deadline. *)

type t

(** Reverse sweep over a prebuilt {!Bitnet} — flat-array iteration, no
    per-bit allocation.  Use this when the net is shared with other
    passes. *)
val of_net :
  ?caps:(Hls_dfg.Types.node_id -> int -> int) -> Bitnet.t ->
  total_slots:int -> t

(** [compute graph ~total_slots ?caps] — [caps id bit] optionally tightens
    the initial deadline of individual bits below the global budget (used
    when fragment windows constrain bits beyond the pure dataflow ALAP,
    e.g. under the coalesced fragmentation policy).  Equivalent to
    [of_net ?caps (Bitnet.build graph) ~total_slots]. *)
val compute :
  ?caps:(Hls_dfg.Types.node_id -> int -> int) -> Hls_dfg.Graph.t ->
  total_slots:int -> t

(** Direct per-query {!Bitdep.bit_deps} evaluation: the executable
    reference for property tests and benchmark baselines.  Produces
    bit-identical slots to {!compute}. *)
val compute_reference :
  ?caps:(Hls_dfg.Types.node_id -> int -> int) -> Hls_dfg.Graph.t ->
  total_slots:int -> t

(** Deadline slot of one node bit. *)
val slot : t -> id:Hls_dfg.Types.node_id -> bit:int -> int

(** Latest cycle (1-based) bit [bit] of node [id] may be computed in,
    under a chaining budget of [n_bits] δ per cycle. *)
val alap_cycle : t -> n_bits:int -> id:Hls_dfg.Types.node_id -> bit:int -> int

(** First bit whose deadline precedes its arrival, if any — the witness
    that a budget is infeasible. *)
val feasible_witness :
  Arrival.t -> t -> (Hls_dfg.Types.node_id * int) option

(** A schedule is feasible iff no bit's deadline precedes its arrival
    (short-circuits on the first violation). *)
val feasible : Arrival.t -> t -> bool
