(** Backward bit-level deadline (ALAP) analysis.

    Given a total budget of [total_slots] = λ·n_bits δ units, the deadline
    of a result bit is the latest slot at which it may be produced while
    every consumer — including the carry chain towards its own upper bits —
    can still meet the overall deadline. *)

type t

(** Reverse level-ordered wavefront over a prebuilt {!Bitnet} — one flat
    slot array in the net's [bit_base] layout, pulling through the
    transpose net, no per-bit allocation.  Use this when the net is
    shared with other passes. *)
val of_net :
  ?caps:(Hls_dfg.Types.node_id -> int -> int) -> Bitnet.t ->
  total_slots:int -> t

(** Like {!of_net}, with independent net regions distributed over
    [workers] pool domains (default {!Hls_pool.default_workers});
    bit-identical to the serial sweep.  Single-region nets and
    [workers <= 1] fall back to {!of_net}. *)
val of_net_parallel :
  ?caps:(Hls_dfg.Types.node_id -> int -> int) -> ?workers:int ->
  Bitnet.t -> total_slots:int -> t

(** Monotone early-exit variant: deadlines are computed level by level
    and each level is validated against [arrival] the moment it is final.
    [Ok t] means every bit was checked — the budget is feasible and [t]
    equals [of_net] on the same inputs; [Error (id, bit)] is the first
    violated bit encountered, reached after sweeping only the levels
    above it (infeasible budgets violate at the deepest nodes, which the
    reverse wavefront settles first). *)
val of_net_check :
  ?caps:(Hls_dfg.Types.node_id -> int -> int) -> Bitnet.t ->
  total_slots:int -> arrival:Arrival.t ->
  (t, Hls_dfg.Types.node_id * int) result

(** [compute graph ~total_slots ?caps] — [caps id bit] optionally tightens
    the initial deadline of individual bits below the global budget (used
    when fragment windows constrain bits beyond the pure dataflow ALAP,
    e.g. under the coalesced fragmentation policy).  Equivalent to
    [of_net ?caps (Bitnet.build graph) ~total_slots]. *)
val compute :
  ?caps:(Hls_dfg.Types.node_id -> int -> int) -> Hls_dfg.Graph.t ->
  total_slots:int -> t

(** Direct per-query {!Bitdep.bit_deps} evaluation: the executable
    reference for property tests and benchmark baselines.  Produces
    bit-identical slots to {!compute}. *)
val compute_reference :
  ?caps:(Hls_dfg.Types.node_id -> int -> int) -> Hls_dfg.Graph.t ->
  total_slots:int -> t

(** Deadline slot of one node bit. *)
val slot : t -> id:Hls_dfg.Types.node_id -> bit:int -> int

(** Latest cycle (1-based) bit [bit] of node [id] may be computed in,
    under a chaining budget of [n_bits] δ per cycle. *)
val alap_cycle : t -> n_bits:int -> id:Hls_dfg.Types.node_id -> bit:int -> int

(** First bit whose deadline precedes its arrival, if any — the witness
    that a budget is infeasible. *)
val feasible_witness :
  Arrival.t -> t -> (Hls_dfg.Types.node_id * int) option

(** A schedule is feasible iff no bit's deadline precedes its arrival
    (short-circuits on the first violation). *)
val feasible : Arrival.t -> t -> bool
