(** Precomputed bit-level dependency net.

    {!Bitdep.bit_deps} answers one [(node, bit)] query at a time by
    rebuilding the dependency list — an allocation per query, quadratic
    [List_ext.dedup] for multipliers, and a [List.nth] walk per operand.
    Every timing pass (arrival, deadline, mobility, the fragment
    scheduler's per-candidate-cycle feasibility probe) repeats those
    queries over all bits of all nodes, so the rebuild cost multiplies
    into the hot path of the whole flow.

    [Bitnet.build] runs the dependency model {e once} per graph and flattens
    it into CSR-style int arrays:

    - every dependency is one packed int — tag bit 0 distinguishes a
      same-node carry ([Self]) from an operand bit ([Node] source);
    - [Input]/[Const] bits are omitted: they are stable at slot 0 and never
      constrain any analysis, so consumers fold over strictly fewer
      entries than the list API returned (results are unchanged — every
      fold starts from the slot-0 identity);
    - per-bit δ costs and a prefix count of δ-costly bits give O(1)
      answers to the "how many adder cells does this bit range occupy?"
      questions the mobility/coalescing/binding passes keep asking.

    The net is immutable after construction and safe to share across
    domains (parallel design-space sweeps build it once per kernel). *)

open Hls_dfg.Types
module Operand = Hls_dfg.Operand
module Graph = Hls_dfg.Graph

type t = {
  graph : Graph.t;
  bit_base : int array;
      (** length [node_count + 1]: flat index of bit 0 of each node; the
          width of node [id] is [bit_base.(id+1) - bit_base.(id)] *)
  cost : int array;  (** per flat bit: δ cost of producing it *)
  costly_prefix : int array;
      (** length [total_bits + 1]: running count of δ-costly bits, for O(1)
          range queries *)
  dep_off : int array;
      (** length [total_bits + 1]: CSR offsets into [deps] *)
  deps : int array;  (** packed dependencies (see [dep_is_self] etc.) *)
  flat_deps : int array;
      (** [deps] re-encoded for the wavefront kernels: same CSR offsets
          ([dep_off]), each entry the flat [bit_base]-indexed slot of the
          source bit — one indirection per dependency load, no tag
          decode *)
  node_level : int array;
      (** per node: topological level (0 = fed only by inputs/constants
          and its own carry chain; otherwise 1 + max producer level) *)
  level_off : int array;
      (** length [n_levels + 1]: CSR offsets into [level_nodes] *)
  level_nodes : int array;
      (** node ids grouped by level, ascending id within a level — the
          wavefront order of the timing kernels *)
  comp_of : int array;  (** per node: weakly-connected region id *)
  comp_off : int array;
      (** length [n_regions + 1]: CSR offsets into [comp_nodes] *)
  comp_nodes : int array;
      (** node ids grouped by region, ascending id within a region (a
          valid topological order of the region) — the unit of
          intra-request parallelism *)
  rdep_off : int array;
      (** length [total_bits + 1]: CSR offsets into [rdeps] *)
  rdeps : int array;
      (** transpose of [flat_deps]: per flat bit, the flat slots of the
          bits that consume it (including same-node carry consumers) —
          what lets the deadline pass pull instead of push *)
}

(* Packed encoding: bit 0 tags the kind.
     Self j           ->  j lsl 1
     Bit (Node id, i) ->  (((id lsl bit_shift) lor i) lsl 1) lor 1
   Input/Const bits are not stored at all. *)
let bit_shift = 20
let bit_mask = (1 lsl bit_shift) - 1
let max_width = 1 lsl bit_shift

let dep_is_self d = d land 1 = 0
let dep_self_bit d = d lsr 1
let dep_node_id d = d lsr (bit_shift + 1)
let dep_node_bit d = (d lsr 1) land bit_mask

let pack_self j = j lsl 1
let pack_node id i = (((id lsl bit_shift) lor i) lsl 1) lor 1

(* Growable int buffer for the deps array. *)
type ivec = { mutable a : int array; mutable len : int }

let ivec_create () = { a = Array.make 1024 0; len = 0 }

let ivec_push v x =
  if v.len = Array.length v.a then begin
    let a' = Array.make (2 * Array.length v.a) 0 in
    Array.blit v.a 0 a' 0 v.len;
    v.a <- a'
  end;
  v.a.(v.len) <- x;
  v.len <- v.len + 1

let ivec_blit v src pos len =
  let cap = ref (Array.length v.a) in
  while v.len + len > !cap do
    cap := 2 * !cap
  done;
  if !cap > Array.length v.a then begin
    let a' = Array.make !cap 0 in
    Array.blit v.a 0 a' 0 v.len;
    v.a <- a'
  end;
  Array.blit src pos v.a v.len len;
  v.len <- v.len + len

(* The dependency model of one node: emit the δ cost and packed rows of
   every result bit into the shared [deps] buffer, recording
   [cost.(base + pos)] and [dep_off.(base + pos + 1) = deps.len].  A
   node's rows depend only on its own kind/operands/width — never on the
   rest of the graph — which is what makes [rebuild_dirty] sound: clean
   nodes' spans can be blitted verbatim from the previous net. *)
let emit_node deps cost dep_off ~base (n : node) =
  (* Emit the source bit feeding computation position [pos] through
     operand [o] (nothing for Input/Const sources or zero padding). *)
  let push_operand_bit (o : operand) pos =
    if pos < Operand.width o then (
      match o.src with
      | Node id -> ivec_push deps (pack_node id (o.lo + pos))
      | Input _ | Const _ -> ())
    else
      match o.ext with
      | Zext -> ()
      | Sext -> (
          match o.src with
          | Node id -> ivec_push deps (pack_node id o.hi)
          | Input _ | Const _ -> ())
  in
  let push_all_operand_bits (o : operand) =
    match o.src with
    | Node id ->
        for p = 0 to Operand.width o - 1 do
          ivec_push deps (pack_node id (o.lo + p))
        done
    | Input _ | Const _ -> ()
  in
  let push_carry pos = if pos > 0 then ivec_push deps (pack_self (pos - 1)) in
  begin
      (* One-time operand array: no List.nth walk per bit. *)
      let ops = Array.of_list n.operands in
      let op i = ops.(i) in
      let n_ops = Array.length ops in
      let max_operand_width () =
        let w = ref 1 in
        for i = 0 to n_ops - 1 do
          w := max !w (Operand.width ops.(i))
        done;
        !w
      in
      (* Node-source bit intervals feeding multiplier bit [pos], merged by
         construction: overlapping reads of one source (e.g. squaring)
         collapse without the quadratic dedup of the list model. *)
      let push_mul_intervals pos =
        let ivs = ref [] in
        for i = 0 to n_ops - 1 do
          let o = ops.(i) in
          let k = min (pos + 1) (Operand.width o) in
          if k > 0 then
            match o.src with
            | Node id -> ivs := (id, o.lo, o.lo + k - 1) :: !ivs
            | Input _ | Const _ -> ()
        done;
        let sorted = List.sort compare !ivs in
        let rec emit = function
          | [] -> ()
          | [ (id, lo, hi) ] ->
              for b = lo to hi do
                ivec_push deps (pack_node id b)
              done
          | (id1, lo1, hi1) :: ((id2, lo2, hi2) :: tl as rest) ->
              if id1 = id2 && lo2 <= hi1 + 1 then
                emit ((id1, lo1, max hi1 hi2) :: tl)
              else begin
                for b = lo1 to hi1 do
                  ivec_push deps (pack_node id1 b)
                done;
                emit rest
              end
        in
        emit sorted
      in
      let two_op_adder ~cin operands pos =
        let cover =
          List.fold_left
            (fun acc (o : operand) ->
              match o.ext with
              | Sext -> max_int
              | Zext -> max acc (Operand.width o))
            0 operands
        in
        if pos < cover then begin
          List.iter (fun o -> push_operand_bit o pos) operands;
          push_carry pos;
          (if pos = 0 then
             match cin with
             | Some (c : operand) -> (
                 match c.src with
                 | Node id -> ivec_push deps (pack_node id c.lo)
                 | Input _ | Const _ -> ())
             | None -> ());
          1
        end
        else begin
          push_carry pos;
          0
        end
      in
      for pos = 0 to n.width - 1 do
        let c =
          match n.kind with
          | Add -> (
              match n.operands with
              | [ a; b ] -> two_op_adder ~cin:None [ a; b ] pos
              | [ a; b; c ] -> two_op_adder ~cin:(Some c) [ a; b ] pos
              | _ -> invalid_arg "Bitnet: malformed add")
          | Sub | Neg -> two_op_adder ~cin:None n.operands pos
          | Mul ->
              push_mul_intervals pos;
              push_carry pos;
              1
          | Lt | Le | Gt | Ge | Eq | Neq ->
              Array.iter push_all_operand_bits ops;
              max_operand_width ()
          | Max | Min ->
              Array.iter push_all_operand_bits ops;
              Array.iter (fun o -> push_operand_bit o pos) ops;
              max_operand_width ()
          | Not | Wire ->
              push_operand_bit (op 0) pos;
              0
          | And | Or | Xor ->
              Array.iter (fun o -> push_operand_bit o pos) ops;
              0
          | Gate ->
              push_operand_bit (op 0) pos;
              let ctrl = op 1 in
              (match ctrl.src with
              | Node id -> ivec_push deps (pack_node id ctrl.lo)
              | Input _ | Const _ -> ());
              0
          | Mux ->
              let sel = op 0 in
              (match sel.src with
              | Node id -> ivec_push deps (pack_node id sel.lo)
              | Input _ | Const _ -> ());
              push_operand_bit (op 1) pos;
              push_operand_bit (op 2) pos;
              0
          | Concat ->
              let rec find offset i =
                if i >= n_ops then ()
                else
                  let o = ops.(i) in
                  let w = Operand.width o in
                  if pos < offset + w then (
                    match o.src with
                    | Node id -> ivec_push deps (pack_node id (o.lo + (pos - offset)))
                    | Input _ | Const _ -> ())
                  else find (offset + w) (i + 1)
              in
              find 0 0;
              0
          | Reduce_or ->
              push_all_operand_bits (op 0);
              0
        in
        cost.(base + pos) <- c;
        dep_off.(base + pos + 1) <- deps.len
      done
  end

(* Node widths (and a width-bound check) folded into the flat bit
   layout. *)
let bases_of graph =
  let n_nodes = Graph.node_count graph in
  let bit_base = Array.make (n_nodes + 1) 0 in
  for id = 0 to n_nodes - 1 do
    let w = (Graph.node graph id).width in
    if w >= max_width then
      invalid_arg
        (Printf.sprintf "Bitnet.build: node %d width %d exceeds %d" id w
           max_width);
    bit_base.(id + 1) <- bit_base.(id) + w
  done;
  bit_base

(* Everything downstream of the dependency rows: cheap O(V + E) int
   passes deriving the prefix counts, the flat re-encoding, the
   wavefront levels, the region partition and the transpose.  Shared by
   [build] and [rebuild_dirty] so both construction paths are
   definitionally identical past the rows. *)
let derive graph ~bit_base ~cost ~dep_off ~deps =
  let n_nodes = Graph.node_count graph in
  let total_bits = bit_base.(n_nodes) in
  let costly_prefix = Array.make (total_bits + 1) 0 in
  for b = 0 to total_bits - 1 do
    costly_prefix.(b + 1) <-
      costly_prefix.(b) + (if cost.(b) > 0 then 1 else 0)
  done;
  let n_deps = Array.length deps in
  (* Flat re-encoding: the wavefront kernels load a source slot with one
     array indirection, so the tag decode happens here, once per graph. *)
  let flat_deps = Array.make n_deps 0 in
  for id = 0 to n_nodes - 1 do
    for k = dep_off.(bit_base.(id)) to dep_off.(bit_base.(id + 1)) - 1 do
      let d = deps.(k) in
      flat_deps.(k) <-
        (if dep_is_self d then bit_base.(id) + dep_self_bit d
         else bit_base.(dep_node_id d) + dep_node_bit d)
    done
  done;
  (* Topological level of each node: carry chains stay within a level, so
     a level is exactly the set of nodes whose cross-node inputs are all
     settled once every earlier level is.  Ascending ids are topological
     (operands reference strictly smaller ids), so one pass suffices. *)
  let node_level = Array.make (max n_nodes 1) 0 in
  for id = 0 to n_nodes - 1 do
    let lvl = ref 0 in
    for k = dep_off.(bit_base.(id)) to dep_off.(bit_base.(id + 1)) - 1 do
      let d = deps.(k) in
      if not (dep_is_self d) then
        lvl := max !lvl (node_level.(dep_node_id d) + 1)
    done;
    node_level.(id) <- !lvl
  done;
  let n_levels =
    if n_nodes = 0 then 0
    else 1 + Array.fold_left max 0 (Array.sub node_level 0 n_nodes)
  in
  let level_off = Array.make (n_levels + 1) 0 in
  for id = 0 to n_nodes - 1 do
    level_off.(node_level.(id) + 1) <- level_off.(node_level.(id) + 1) + 1
  done;
  for l = 0 to n_levels - 1 do
    level_off.(l + 1) <- level_off.(l + 1) + level_off.(l)
  done;
  let level_nodes = Array.make n_nodes 0 in
  let cursor = Array.copy level_off in
  for id = 0 to n_nodes - 1 do
    let l = node_level.(id) in
    level_nodes.(cursor.(l)) <- id;
    cursor.(l) <- cursor.(l) + 1
  done;
  (* Weakly-connected regions over the node graph, from operand [Node]
     sources — a superset of the bit-dependency edges (some operand bits
     may not feed any result bit), so regions stay dependency-closed and
     merely err towards coarser partitions.  Discovery is a word-packed
     BFS: a {!Hls_bitvec.Wordset} visited set seeds each region with a
     [next_unset] whole-word scan, and frontier/next sets sweep members
     with [next_set]. *)
  let module Ws = Hls_bitvec.Wordset in
  let degree = Array.make (n_nodes + 1) 0 in
  let iter_operand_edges f =
    Graph.iter_nodes
      (fun (n : node) ->
        List.iter
          (fun (o : operand) ->
            match o.src with
            | Node s -> f n.id s
            | Input _ | Const _ -> ())
          n.operands)
      graph
  in
  iter_operand_edges (fun id s ->
      degree.(id + 1) <- degree.(id + 1) + 1;
      degree.(s + 1) <- degree.(s + 1) + 1);
  for i = 0 to n_nodes - 1 do
    degree.(i + 1) <- degree.(i + 1) + degree.(i)
  done;
  let adj_off = degree in
  let adj = Array.make adj_off.(n_nodes) 0 in
  let acursor = Array.copy adj_off in
  iter_operand_edges (fun id s ->
      adj.(acursor.(id)) <- s;
      acursor.(id) <- acursor.(id) + 1;
      adj.(acursor.(s)) <- id;
      acursor.(s) <- acursor.(s) + 1);
  let comp_of = Array.make (max n_nodes 1) 0 in
  let visited = Ws.create n_nodes in
  let frontier = ref (Ws.create n_nodes) in
  let next_front = ref (Ws.create n_nodes) in
  let words_swept = ref 0 in
  let n_regions = ref 0 in
  let seed_from = ref 0 in
  let continue = ref (n_nodes > 0) in
  while !continue do
    let seed = Ws.next_unset visited !seed_from in
    if seed < 0 then continue := false
    else begin
      (* Seed scan cost: whole full words are skipped in one load each. *)
      words_swept :=
        !words_swept + (seed / Ws.bits_per_word)
        - (!seed_from / Ws.bits_per_word)
        + 1;
      seed_from := seed;
      let comp = !n_regions in
      incr n_regions;
      Ws.add visited seed;
      comp_of.(seed) <- comp;
      Ws.clear !frontier;
      Ws.add !frontier seed;
      while not (Ws.is_empty !frontier) do
        words_swept := !words_swept + Ws.words !frontier;
        Ws.clear !next_front;
        Ws.iter
          (fun u ->
            for k = adj_off.(u) to adj_off.(u + 1) - 1 do
              let v = adj.(k) in
              if not (Ws.mem visited v) then begin
                Ws.add visited v;
                comp_of.(v) <- comp;
                Ws.add !next_front v
              end
            done)
          !frontier;
        let tmp = !frontier in
        frontier := !next_front;
        next_front := tmp
      done
    end
  done;
  let n_regions = !n_regions in
  (* Regroup by region with a counting sort: ascending ids within a
     region keep each [comp_nodes] slice a valid topological order. *)
  let comp_off = Array.make (n_regions + 1) 0 in
  for id = 0 to n_nodes - 1 do
    comp_off.(comp_of.(id) + 1) <- comp_off.(comp_of.(id) + 1) + 1
  done;
  for c = 0 to n_regions - 1 do
    comp_off.(c + 1) <- comp_off.(c + 1) + comp_off.(c)
  done;
  let comp_nodes = Array.make n_nodes 0 in
  let ccursor = Array.copy comp_off in
  for id = 0 to n_nodes - 1 do
    let c = comp_of.(id) in
    comp_nodes.(ccursor.(c)) <- id;
    ccursor.(c) <- ccursor.(c) + 1
  done;
  (* Transpose CSR: who consumes each flat bit.  Filling by ascending
     consumer bit keeps every [rdeps] run sorted. *)
  let rdep_off = Array.make (total_bits + 1) 0 in
  for k = 0 to n_deps - 1 do
    rdep_off.(flat_deps.(k) + 1) <- rdep_off.(flat_deps.(k) + 1) + 1
  done;
  for b = 0 to total_bits - 1 do
    rdep_off.(b + 1) <- rdep_off.(b + 1) + rdep_off.(b)
  done;
  let rdeps = Array.make n_deps 0 in
  let rcursor = Array.copy rdep_off in
  for b = 0 to total_bits - 1 do
    for k = dep_off.(b) to dep_off.(b + 1) - 1 do
      let src = flat_deps.(k) in
      rdeps.(rcursor.(src)) <- b;
      rcursor.(src) <- rcursor.(src) + 1
    done
  done;
  Hls_telemetry.gauge "timing.levels" (float n_levels);
  Hls_telemetry.gauge "timing.regions" (float n_regions);
  if !words_swept > 0 then
    Hls_telemetry.count ~n:!words_swept "timing.words_swept";
  {
    graph;
    bit_base;
    cost;
    costly_prefix;
    dep_off;
    deps;
    flat_deps;
    node_level;
    level_off;
    level_nodes;
    comp_of;
    comp_off;
    comp_nodes;
    rdep_off;
    rdeps;
  }

let build graph =
  let bit_base = bases_of graph in
  let n_nodes = Graph.node_count graph in
  let total_bits = bit_base.(n_nodes) in
  let cost = Array.make total_bits 0 in
  let dep_off = Array.make (total_bits + 1) 0 in
  let deps = ivec_create () in
  Graph.iter_nodes
    (fun (n : node) -> emit_node deps cost dep_off ~base:bit_base.(n.id) n)
    graph;
  let deps = Array.sub deps.a 0 deps.len in
  derive graph ~bit_base ~cost ~dep_off ~deps

let rebuild_dirty old graph ~dirty =
  let n_nodes = Graph.node_count graph in
  if n_nodes <> Array.length old.bit_base - 1 then None
  else begin
    let same_layout = ref true in
    for id = 0 to n_nodes - 1 do
      if
        (Graph.node graph id).width
        <> old.bit_base.(id + 1) - old.bit_base.(id)
      then same_layout := false
    done;
    if not !same_layout then None
    else begin
      let bit_base = old.bit_base in
      let total_bits = bit_base.(n_nodes) in
      let is_dirty = Array.make (max n_nodes 1) false in
      List.iter
        (fun id -> if id >= 0 && id < n_nodes then is_dirty.(id) <- true)
        dirty;
      let cost = Array.copy old.cost in
      let dep_off = Array.make (total_bits + 1) 0 in
      let deps = ivec_create () in
      let dirty_nodes = ref 0 in
      for id = 0 to n_nodes - 1 do
        if is_dirty.(id) then begin
          incr dirty_nodes;
          emit_node deps cost dep_off ~base:bit_base.(id)
            (Graph.node graph id)
        end
        else begin
          (* Clean rows are untouched by an edit elsewhere: blit the old
             span and rebase its offsets. *)
          let lo = old.dep_off.(bit_base.(id)) in
          let hi = old.dep_off.(bit_base.(id + 1)) in
          ivec_blit deps old.deps lo (hi - lo);
          for b = bit_base.(id) to bit_base.(id + 1) - 1 do
            dep_off.(b + 1) <-
              dep_off.(b) + old.dep_off.(b + 1) - old.dep_off.(b)
          done
        end
      done;
      let deps = Array.sub deps.a 0 deps.len in
      Hls_telemetry.count "timing.rebuild_dirty";
      if !dirty_nodes > 0 then
        Hls_telemetry.count ~n:!dirty_nodes "timing.rebuild_dirty_nodes";
      Some (derive graph ~bit_base ~cost ~dep_off ~deps)
    end
  end

let total_bits t = t.bit_base.(Array.length t.bit_base - 1)
let n_levels t = Array.length t.level_off - 1
let n_regions t = Array.length t.comp_off - 1
let width t ~id = t.bit_base.(id + 1) - t.bit_base.(id)
let cost_of t ~id ~bit = t.cost.(t.bit_base.(id) + bit)

(** δ-costly bits among result bits [lo..hi] (inclusive) of node [id]:
    the adder cells that bit range occupies. *)
let costly_in_range t ~id ~lo ~hi =
  let base = t.bit_base.(id) in
  t.costly_prefix.(base + hi + 1) - t.costly_prefix.(base + lo)

(** δ-costly bits of the whole node. *)
let costly_width t ~id = costly_in_range t ~id ~lo:0 ~hi:(width t ~id - 1)

(** Owning node of a flat slot, by binary search over [bit_base]. *)
let node_of_slot t slot =
  let lo = ref 0 and hi = ref (Array.length t.bit_base - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.bit_base.(mid) <= slot then lo := mid else hi := mid
  done;
  !lo

let fold_deps t ~id ~bit ~init ~f =
  let b = t.bit_base.(id) + bit in
  let acc = ref init in
  for k = t.dep_off.(b) to t.dep_off.(b + 1) - 1 do
    acc := f !acc t.deps.(k)
  done;
  !acc

(** Decode the packed deps of one bit back to the list form of
    {!Bitdep.dep} (minus the omitted [Input]/[Const] bits) — for tests and
    debugging, not for hot paths. *)
let deps_list t ~id ~bit =
  List.rev
    (fold_deps t ~id ~bit ~init:[] ~f:(fun acc d ->
         (if dep_is_self d then Bitdep.Self (dep_self_bit d)
          else Bitdep.Bit (Node (dep_node_id d), dep_node_bit d))
         :: acc))
