(** Forward bit-level arrival analysis — the "rippling" model of the
    paper's Figs. 1e and 3b.

    The arrival slot of a result bit is the number of δ units (1-bit
    chained additions) after the start of execution at which that bit is
    stable, assuming unlimited chaining.  Registering a value at a cycle
    boundary never makes it available earlier than its combinational
    arrival, so under a per-cycle budget of [n_bits] δ the earliest cycle a
    bit can be produced in is simply [ceil(slot / n_bits)]: the
    unconstrained arrival time *is* the bit-level ASAP schedule. *)

type t

(** Compute arrival slots over a prebuilt {!Bitnet}: a level-ordered
    wavefront over one flat slot array sharing the net's [bit_base]
    layout — one untagged indirection per dependency, no per-bit
    allocation.  Use this when the net is shared with other passes
    (deadline, mobility, fragment scheduling). *)
val of_net : Bitnet.t -> t

(** Like {!of_net}, with independent net regions (weakly-connected
    components) distributed over [workers] pool domains (default
    {!Hls_pool.default_workers}).  Regions touch disjoint slices of the
    shared slot array, so the result is bit-identical to the serial
    sweep; single-region nets and [workers <= 1] fall back to
    {!of_net}. *)
val of_net_parallel : ?workers:int -> ?pool:Hls_pool.Shared.t -> Bitnet.t -> t

(** [update_of_net net told ~dirty] — incremental re-timing.  [net] must
    share its flat bit layout with the net [told] was computed on, with
    dependency rows differing only at the [dirty] node ids (exactly what
    {!Bitnet.rebuild_dirty} produces).  Re-sweeps only the cone reachable
    from the dirty set, pruning where recomputed slots come out
    unchanged; bit-identical to [of_net net]. *)
val update_of_net :
  Bitnet.t -> t -> dirty:Hls_dfg.Types.node_id list -> t

(** Compute arrival slots for every bit of every node.  Equivalent to
    [of_net (Bitnet.build graph)]. *)
val compute : Hls_dfg.Graph.t -> t

(** Direct per-query {!Bitdep.bit_deps} evaluation: the executable
    reference for property tests and benchmark baselines.  Produces
    bit-identical slots to {!compute}. *)
val compute_reference : Hls_dfg.Graph.t -> t

(** Arrival slot of one node bit (0 = stable at start). *)
val slot : t -> id:Hls_dfg.Types.node_id -> bit:int -> int

(** Arrival slot of an operand bit position (before extension). *)
val operand_slot : t -> Hls_dfg.Types.operand -> bit:int -> int

(** The flat [bit_base]-indexed slot array backing [t] — a read-only
    view (do not mutate) used by the deadline pass for word-blocked
    feasibility scans. *)
val flat_slots : t -> int array

(** Latest arrival over all bits of all nodes: the critical path length in
    δ. *)
val critical_delta : t -> int

(** Earliest cycle (1-based) bit [bit] of node [id] can be computed in,
    under a chaining budget of [n_bits] δ per cycle. *)
val asap_cycle : t -> n_bits:int -> id:Hls_dfg.Types.node_id -> bit:int -> int

val pp : Format.formatter -> t -> unit
