(* Recipe specs: an ordered pass list with a fixpoint combinator, parsed
   from strings like "fold,cse,strength,balance,dce" or
   "repeat(canon,fold,cse,dce)".  Preset names expand in place, so
   "standard" and "canon,standard" both parse.  '+' is accepted as a
   separator alongside ','. *)

type step = Apply of Pass.t | Repeat of step list
type t = { spec : string; steps : step list }

let rec step_to_string = function
  | Apply p -> p.Pass.name
  | Repeat steps ->
      "repeat(" ^ String.concat "," (List.map step_to_string steps) ^ ")"

let steps_to_string = function
  | [] -> "none"
  | steps -> String.concat "," (List.map step_to_string steps)

let to_string t = t.spec
let equal a b = String.equal a.spec b.spec

let preset_specs =
  [
    ("none", "");
    ("cleanup", "repeat(fold,cse,dce)");
    ("standard", "canon,fold,cse,strength,balance,dce");
    ("aggressive", "repeat(canon,fold,cse,strength,balance,dce)");
  ]

let preset_names = List.map fst preset_specs

(* ------------------------------------------------------------------ *)
(* Parsing: a hand-rolled token scanner; names resolve in the catalog
   first, then as presets (expanded in place). *)

type token = Name of string | Lparen | Rparen | Sep

let tokenize spec =
  let n = String.length spec in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match spec.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' | '+' -> go (i + 1) (Sep :: acc)
      | c when c = '_' || c = '-' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ->
          let j = ref i in
          while
            !j < n
            &&
            match spec.[!j] with
            | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true
            | _ -> false
          do
            incr j
          done;
          go !j (Name (String.sub spec i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "recipe %S: unexpected character %C" spec c)
  in
  go 0 []

let parse spec =
  let ( let* ) = Result.bind in
  let* tokens = tokenize spec in
  (* items := item (Sep item)* | empty ; item := name | repeat ( items ) *)
  let rec items depth toks acc =
    match toks with
    | [] -> Ok (List.rev acc, [])
    | Rparen :: _ when depth > 0 -> Ok (List.rev acc, toks)
    | Rparen :: _ -> Error (Printf.sprintf "recipe %S: unbalanced ')'" spec)
    | Sep :: rest -> items depth rest acc
    | Name "repeat" :: Lparen :: rest -> (
        let* body, rest = items (depth + 1) rest [] in
        match rest with
        | Rparen :: rest ->
            if body = [] then
              Error (Printf.sprintf "recipe %S: empty repeat()" spec)
            else items depth rest (Repeat body :: acc)
        | _ -> Error (Printf.sprintf "recipe %S: missing ')'" spec))
    | Name name :: rest -> (
        match Catalog.find name with
        | Some p -> items depth rest (Apply p :: acc)
        | None -> (
            match List.assoc_opt name preset_specs with
            | Some body ->
                let* expanded = parse_spec body in
                items depth rest (List.rev_append expanded acc)
            | None ->
                Error
                  (Printf.sprintf
                     "recipe %S: unknown pass %S (passes: %s; presets: %s)"
                     spec name
                     (String.concat ", " (Catalog.names ()))
                     (String.concat ", " preset_names))))
    | Lparen :: _ ->
        Error (Printf.sprintf "recipe %S: '(' only follows repeat" spec)
  and parse_spec s =
    let* toks = tokenize s in
    let* steps, rest = items 0 toks [] in
    match rest with
    | [] -> Ok steps
    | _ -> Error (Printf.sprintf "recipe %S: trailing tokens" s)
  in
  let* steps, rest = items 0 tokens [] in
  match rest with
  | [] -> Ok { spec = steps_to_string steps; steps }
  | _ -> Error (Printf.sprintf "recipe %S: unbalanced ')'" spec)

let of_string_exn spec =
  match parse spec with Ok t -> t | Error m -> invalid_arg m

let none = of_string_exn "none"
let cleanup = of_string_exn "cleanup"
let standard = of_string_exn "standard"
let aggressive = of_string_exn "aggressive"

(* Top-level split of a comma-separated recipe *list* (the CLI's
   --recipes axis): commas inside repeat(...) do not split. *)
let split_specs s =
  let n = String.length s in
  let out = ref [] and start = ref 0 and depth = ref 0 in
  for i = 0 to n - 1 do
    match s.[i] with
    | '(' -> incr depth
    | ')' -> decr depth
    | ',' when !depth = 0 ->
        out := String.sub s !start (i - !start) :: !out;
        start := i + 1
    | _ -> ()
  done;
  out := String.sub s !start (n - !start) :: !out;
  List.rev_map String.trim !out |> List.filter (fun s -> s <> "")

let pp ppf t = Format.pp_print_string ppf t.spec
