(* The verification gate's policy: how much differential simulation each
   recipe application buys.  [Every_pass] checks (and can roll back) each
   pass against its own input graph; [Sampled] checks the whole recipe
   end-to-end once; [Off] trusts the catalog. *)

type policy = Off | Sampled | Every_pass

let to_string = function
  | Off -> "off"
  | Sampled -> "sampled"
  | Every_pass -> "every_pass"

let of_string = function
  | "off" | "none" -> Some Off
  | "sampled" -> Some Sampled
  | "every_pass" | "every-pass" -> Some Every_pass
  | _ -> None

let all = [ Off; Sampled; Every_pass ]
let pp ppf p = Format.pp_print_string ppf (to_string p)
