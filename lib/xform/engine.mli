(** The pass manager and verification gate: run a {!Recipe} over a
    graph, one telemetry-spanned pass application at a time, gating each
    application by {!Hls_check.equivalent} under a {!Verify.policy}.

    Under [Every_pass] a mismatching rewrite is rolled back (the recipe
    continues from the pre-pass graph) and surfaced in its log entry as
    a typed {!Hls_util.Failure} carrying {!Rejected}; under [Sampled]
    one end-to-end check runs after the last pass and a mismatch rolls
    the whole recipe back to the input graph. *)

type entry = {
  e_pass : string;
  e_plan : Plan.t;
  e_fired : bool;  (** the graph actually changed *)
  e_accepted : bool;  (** [false]: rolled back by the verify gate *)
  e_verdict : string option;
      (** rendered {!Hls_check.verdict} when this application was checked *)
  e_failure : Hls_util.Failure.t option;
      (** the typed rejection, when rolled back *)
}

type outcome = {
  graph : Hls_dfg.Graph.t;  (** the transformed (or rolled back) graph *)
  log : entry list;  (** one entry per pass application, in order *)
  checks : int;  (** equivalence checks run *)
  rejected : int;  (** applications rolled back *)
}

(** Carried inside the [Internal] failure of a rejected application. *)
exception Rejected of { pass : string; verdict : string }

(** MD5 of the graph's printed form (the sweep cache's digest bytes). *)
val digest : Hls_dfg.Graph.t -> string

(** [apply ?policy ?samples ?seed recipe g].  [samples] (default 40) and
    [seed] (default 9) parameterize each {!Hls_check.equivalent} call;
    checks are exhaustive when the input space fits the checker's budget.
    [repeat(...)] bodies iterate until a whole round leaves the graph
    unchanged, capped at {!max_rounds}. *)
val apply :
  ?policy:Verify.policy -> ?samples:int -> ?seed:int -> Recipe.t ->
  Hls_dfg.Graph.t -> outcome

val max_rounds : int

(** Log entries that fired or were checked (what the CLI prints). *)
val fired_entries : outcome -> entry list

val pp_entry : Format.formatter -> entry -> unit
val pp_log : Format.formatter -> outcome -> unit
