(* Strength reduction: multiplication by a constant becomes a balanced
   shift/add-subtract network over the constant's canonical signed-digit
   (CSD) recoding.

   The kernel extractor already CSD-lowers constant multipliers, but as a
   *linear* fold chain whose additive depth grows with the digit count;
   rewriting before extraction lets us build a balanced tree instead, so
   the critical delta-path the bitnet sees is logarithmic in the digit
   count.  (The paper's IR has no division or modulo kinds, so the
   classic divide/mod-by-power-of-two reductions have no target here —
   see docs/TRANSFORMATIONS.md.)

   Soundness: [Mul] multiplies the *raw* operand bits, interpreted per
   the node's signedness, and truncates (or extends) the product to the
   node width [w] — every reading agrees with exact integer arithmetic
   modulo 2^w.  With [c = Sum of +/- 2^k] over the CSD digits,

     x * c  =  Sum of +/- (x * 2^k)   (mod 2^w)

   and each term is the w-bit value of x shifted left by k, which is
   exactly [Concat (zeros k, x[0 .. w-k-1])].  Adds, subs and negations
   at width [w] with width-[w] operands are also mod-2^w arithmetic, so
   the network computes the same w-bit result for every input. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module Operand = Hls_dfg.Operand
module B = Hls_dfg.Builder
module Rewrite = Hls_opt.Rewrite
module Bv = Hls_bitvec
module Csd = Hls_util.Csd

(* The integer factor a truncating Mul sees in a constant operand: the
   selected bits, read per the node's signedness.  None when the operand
   is not a constant or too wide for an OCaml int. *)
let factor ~signedness (o : operand) =
  match o.src with
  | Const bv when o.hi - o.lo + 1 <= 62 ->
      let bits = Bv.slice bv ~hi:o.hi ~lo:o.lo in
      Some
        (match signedness with
        | Signed -> Bv.to_signed_int bits
        | Unsigned -> Bv.to_int bits)
  | _ -> None

(* x as a width-[w] operand, extended per the node's signedness (Mul
   reads raw bits under the node's signedness, so the operand's own
   extension mode is deliberately ignored). *)
let widened ctx ~signedness (o : operand) w =
  let ow = Operand.width o in
  if ow = w then o
  else if ow > w then Operand.reslice o ~hi:(w - 1) ~lo:0
  else
    let ext = match signedness with Signed -> Sext | Unsigned -> Zext in
    B.node ctx.Rewrite.b Wire ~width:w [ { o with ext } ]

(* (x << k) mod 2^w, over a width-[w] operand. *)
let shifted ctx xw k w =
  if k = 0 then xw
  else if k >= w then Operand.of_const (Bv.zero w)
  else
    B.node ctx.Rewrite.b Concat ~width:w
      [
        Operand.of_const (Bv.zero k);
        Operand.reslice xw ~hi:(w - k - 1) ~lo:0;
      ]

(* Balanced pairwise reduction of width-[w] terms under Add. *)
let rec reduce ctx w = function
  | [] -> Operand.of_const (Bv.zero w)
  | [ t ] -> t
  | terms ->
      let rec pair = function
        | a :: b :: rest -> B.node ctx.Rewrite.b Add ~width:w [ a; b ] :: pair rest
        | rest -> rest
      in
      reduce ctx w (pair terms)

let network ctx (n : node) xo c =
  let w = n.width in
  let finish kind operands =
    B.node ctx.Rewrite.b kind ~width:w ~signedness:n.signedness
      ~label:n.label ?origin:n.origin operands
  in
  if c = 0 then Operand.of_const (Bv.zero w)
  else
    let xw = widened ctx ~signedness:n.signedness xo w in
    let digits = Csd.digits c in
    let pos, neg = List.partition (fun (_, negative) -> not negative) digits in
    let terms ds = List.map (fun (k, _) -> shifted ctx xw k w) ds in
    match (reduce ctx w (terms pos), neg) with
    | p, [] -> finish Wire [ p ]
    | p, neg -> (
        match (pos, reduce ctx w (terms neg)) with
        | [], m -> finish Neg [ m ]
        | _, m -> finish Sub [ p; m ])

let run g =
  let sites = ref [] in
  let graph =
    Rewrite.run g ~f:(fun ctx n ->
        match (n.kind, n.operands) with
        | Mul, [ a; b ] -> (
            let fa = factor ~signedness:n.signedness a
            and fb = factor ~signedness:n.signedness b in
            match (fa, fb) with
            | Some _, Some _ ->
                (* Both constant: folding's job, not ours. *)
                Rewrite.copy ctx n
            | Some c, None | None, Some c ->
                let xo =
                  Rewrite.map_operand ctx (if fa = None then a else b)
                in
                sites :=
                  {
                    Plan.at = n.id;
                    note =
                      Printf.sprintf "mul by %d -> %d-digit csd network" c
                        (Csd.digit_count c);
                  }
                  :: !sites;
                network ctx n xo c
            | None, None -> Rewrite.copy ctx n)
        | _ -> Rewrite.copy ctx n)
  in
  { Pass.graph; sites = List.rev !sites }
