(* The plan record carried by every pass application: sites matched in
   the input graph plus the node-count and behavioural-depth effect.
   Depth counts behavioural operations only (glue is free), mirroring the
   chained-addition delay metric the scheduler optimizes. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph

type site = { at : node_id; note : string }

type t = {
  pass : string;
  sites : site list;
  nodes_before : int;
  nodes_after : int;
  depth_before : int;
  depth_after : int;
}

let node_depths g =
  let d = Array.make (max 1 (Graph.node_count g)) 0 in
  Graph.iter_nodes
    (fun n ->
      let base =
        List.fold_left
          (fun acc (o : operand) ->
            match o.src with Node id -> max acc d.(id) | _ -> acc)
          0 n.operands
      in
      d.(n.id) <- (base + if is_behavioural n.kind then 1 else 0))
    g;
  d

let depth g =
  let d = node_depths g in
  List.fold_left
    (fun acc (_, (o : operand)) ->
      match o.src with Node id -> max acc d.(id) | _ -> acc)
    0 g.Graph.outputs

let make ~pass ~sites ~before ~after =
  {
    pass;
    sites;
    nodes_before = Graph.node_count before;
    nodes_after = Graph.node_count after;
    depth_before = depth before;
    depth_after = depth after;
  }

let fired t = t.sites <> [] || t.nodes_before <> t.nodes_after

let pp ppf t =
  Format.fprintf ppf "%s: %d site%s, nodes %d -> %d, depth %d -> %d" t.pass
    (List.length t.sites)
    (if List.length t.sites = 1 then "" else "s")
    t.nodes_before t.nodes_after t.depth_before t.depth_after

let pp_verbose ppf t =
  pp ppf t;
  List.iter
    (fun s -> Format.fprintf ppf "@.  @@%d %s" s.at s.note)
    t.sites
