(* Operand canonicalization: order the operands of commutative operations
   under a stable structural key and elide identity wires.  Value-neutral
   on its own, but it turns [a+b] and [b+a] into the same shape, so CSE
   downstream shares what it previously missed.

   Soundness notes: every operand carries its own extension mode, so
   swapping the operand list of a commutative operation swaps which value
   each slot contributes, not how either value is read.  A [Wire] whose
   operand already has the node's width is the identity (the simulator
   extends to the node width, which is a no-op), so consumers can read
   the source range directly. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module Operand = Hls_dfg.Operand
module B = Hls_dfg.Builder
module Rewrite = Hls_opt.Rewrite

(* Kinds whose operands may be reordered freely.  [Add] is handled
   separately because a third operand is a carry-in that must stay put;
   [Sub], [Gate], [Mux] and [Concat] are position-sensitive. *)
let commutative = function
  | Mul | And | Or | Xor | Eq | Neq | Max | Min -> true
  | _ -> false

let src_key = function
  | Input name -> (0, name, 0)
  | Node id -> (1, "", id)
  | Const bv -> (2, Hls_bitvec.to_string bv, 0)

(* Stable total order over operands of the rewritten graph: constants
   sort last (so [x + 1] keeps the variable first, the usual convention),
   inputs before nodes, then the selected range and extension mode. *)
let key (o : operand) = (src_key o.src, o.lo, o.hi, o.ext = Sext)

let sort_operands = List.sort (fun a b -> compare (key a) (key b))

let run g =
  let sites = ref [] in
  let site at note = sites := { Plan.at; note } :: !sites in
  let graph =
    Rewrite.run g ~f:(fun ctx n ->
        let mapped () = List.map (Rewrite.map_operand ctx) n.operands in
        let rebuild operands =
          B.node ctx.b n.kind ~width:n.width ~signedness:n.signedness
            ~label:n.label ?origin:n.origin operands
        in
        match (n.kind, n.operands) with
        | Wire, [ o ] when Operand.width o = n.width ->
            site n.id "identity wire elided";
            Rewrite.map_operand ctx o
        | Add, ([ _; _ ] | [ _; _; _ ]) ->
            let sortable, cin =
              match mapped () with
              | [ a; b ] -> ([ a; b ], [])
              | [ a; b; c ] -> ([ a; b ], [ c ])
              | _ -> assert false
            in
            let sorted = sort_operands sortable in
            if sorted <> sortable then site n.id "addends ordered";
            rebuild (sorted @ cin)
        | k, _ when commutative k ->
            let operands = mapped () in
            let sorted = sort_operands operands in
            if sorted <> operands then
              site n.id
                (Printf.sprintf "%s operands ordered" (kind_to_string k));
            rebuild sorted
        | _ -> Rewrite.copy ctx n)
  in
  { Pass.graph; sites = List.rev !sites }
