(** The transformation catalog: every pass a recipe spec can name.
    See docs/TRANSFORMATIONS.md for the full table. *)

val fold : Pass.t
val cse : Pass.t
val dce : Pass.t
val normalize : Pass.t
val canon : Pass.t
val strength : Pass.t
val balance : Pass.t

val all : Pass.t list
val find : string -> Pass.t option
val names : unit -> string list
