type result = { graph : Hls_dfg.Graph.t; sites : Plan.site list }

type t = {
  name : string;
  doc : string;
  rewrite : Hls_dfg.Graph.t -> result;
}

let unchanged g = { graph = g; sites = [] }
