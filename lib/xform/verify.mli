(** Verification policy of the transformation {!Engine}: [Off] trusts
    the catalog, [Sampled] checks the whole recipe end-to-end once by
    differential simulation, [Every_pass] checks each pass against its
    own input graph and rolls a failing rewrite back. *)

type policy = Off | Sampled | Every_pass

val to_string : policy -> string
val of_string : string -> policy option
val all : policy list
val pp : Format.formatter -> policy -> unit
