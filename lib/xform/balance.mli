(** Tree-height reduction: reassociate single-consumer chains of
    two-operand additions or multiplications at one width into
    depth-balanced (Huffman-over-depth) trees, shortening the critical
    delta-path and rebalancing the fanout of early chain stages. *)

val run : Hls_dfg.Graph.t -> Pass.result
