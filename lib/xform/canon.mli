(** Operand canonicalization: order the operands of commutative
    operations under a stable structural key and elide identity wires,
    exposing sharing opportunities to CSE. *)

val run : Hls_dfg.Graph.t -> Pass.result
