(** Recipe specs: an ordered pass list with a fixpoint combinator.

    Grammar (whitespace free; ['+'] is accepted as a separator):
    {v
      recipe := item (',' item)*  |  ""            (no passes)
      item   := PASS | PRESET | "repeat" '(' recipe ')'
    v}
    Pass names come from the {!Catalog}; preset names ([none], [cleanup],
    [standard], [aggressive]) expand in place.  [repeat(...)] iterates its
    body until no pass changes the graph (bounded by the engine's round
    cap). *)

type step = Apply of Pass.t | Repeat of step list

type t = {
  spec : string;  (** canonical rendering of [steps]; ["none"] if empty *)
  steps : step list;
}

val parse : string -> (t, string) result

(** [parse], raising [Invalid_argument] on a bad spec. *)
val of_string_exn : string -> t

(** Canonical spec string ([t.spec]). *)
val to_string : t -> string

val equal : t -> t -> bool

(** The presets, by name: ["none"] is empty, ["cleanup"] is the historic
    post-[cleanup]-flag pipeline [repeat(fold,cse,dce)], ["standard"] is
    [canon,fold,cse,strength,balance,dce], and ["aggressive"] iterates
    the standard body to a fixed point. *)
val preset_specs : (string * string) list

val preset_names : string list
val none : t
val cleanup : t
val standard : t
val aggressive : t

(** Top-level split of a comma-separated recipe {e list} (the CLI's
    [--recipes] axis): commas inside [repeat(...)] do not split; empty
    segments are dropped. *)
val split_specs : string -> string list

val pp : Format.formatter -> t -> unit
