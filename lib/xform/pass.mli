(** A transformation pass: a named, documented DFG-to-DFG rewrite that
    reports the sites it matched.  Soundness is not assumed — the
    {!Engine} gates every application behind {!Hls_check.equivalent}
    under its verify policy, so a buggy pass is rejected and rolled
    back instead of corrupting the flow. *)

type result = {
  graph : Hls_dfg.Graph.t;
  sites : Plan.site list;  (** sites in the input graph, in node order *)
}

type t = {
  name : string;  (** catalog / recipe-spec name *)
  doc : string;  (** one-line intent, shown by [hlsopt transform --list] *)
  rewrite : Hls_dfg.Graph.t -> result;
}

(** A result that matched nothing (the pass left the graph alone). *)
val unchanged : Hls_dfg.Graph.t -> result
