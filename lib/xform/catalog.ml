(* The transformation catalog: every pass a recipe can name.  The four
   presynthesis cleanup passes of [lib/opt] are wrapped as siteless
   entries (they predate the plan machinery; their node-count effect
   still lands in the plan); the native entries report their sites. *)

let wrap name doc f =
  { Pass.name; doc; rewrite = (fun g -> { Pass.graph = f g; sites = [] }) }

let fold =
  wrap "fold" "constant folding and algebraic simplification"
    Hls_opt.Fold.run

let cse =
  wrap "cse" "common-subexpression elimination" Hls_opt.Cse.run

let dce = wrap "dce" "dead-code elimination" Hls_opt.Dce.run

let normalize =
  wrap "normalize" "fold+cse+dce iterated to a fixed point"
    (fun g -> Hls_opt.Normalize.run g)

let canon =
  {
    Pass.name = "canon";
    doc = "order commutative operands, elide identity wires";
    rewrite = Canon.run;
  }

let strength =
  {
    Pass.name = "strength";
    doc = "constant multipliers -> balanced CSD shift/add networks";
    rewrite = Strength.run;
  }

let balance =
  {
    Pass.name = "balance";
    doc = "reassociate add/mul chains into depth-balanced trees";
    rewrite = Balance.run;
  }

let all = [ canon; fold; cse; dce; normalize; strength; balance ]
let find name = List.find_opt (fun p -> String.equal p.Pass.name name) all
let names () = List.map (fun p -> p.Pass.name) all
