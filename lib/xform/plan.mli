(** What a transformation pass did (or intends to do) to a graph: the
    sites it matched and the node-count / behavioural-depth effect.  Every
    pass application in the {!Engine} carries one of these, so a recipe
    run produces an auditable plan log. *)

type site = {
  at : Hls_dfg.Types.node_id;  (** node in the *input* graph *)
  note : string;  (** human-readable description of the rewrite there *)
}

type t = {
  pass : string;
  sites : site list;
  nodes_before : int;
  nodes_after : int;
  depth_before : int;  (** behavioural depth, see {!depth} *)
  depth_after : int;
}

(** Longest output-reaching chain of behavioural operations (glue is free,
    matching the paper's delay metric): the depth the bitnet's critical
    path grows from.  Tree-height reduction exists to shrink this. *)
val depth : Hls_dfg.Graph.t -> int

(** Per-node behavioural depth (index = node id). *)
val node_depths : Hls_dfg.Graph.t -> int array

val make :
  pass:string -> sites:site list -> before:Hls_dfg.Graph.t ->
  after:Hls_dfg.Graph.t -> t

(** The pass matched something or changed the node count. *)
val fired : t -> bool

val pp : Format.formatter -> t -> unit

(** [pp] plus one line per site. *)
val pp_verbose : Format.formatter -> t -> unit
