(* Tree-height reduction: chains of two-operand additions (or
   multiplications) at one width are reassociated into depth-balanced
   trees, shortening the critical delta-path the bitnet sees.

   A chain interior is absorbable into its parent when it computes the
   same kind at the same width and signedness, is read full-range, and
   has exactly one consumer (no output port) — then the whole chain is a
   single k-leaf reduction.  Truncating Add and Mul at a fixed width w
   are associative and commutative modulo 2^w, and the leaves keep their
   own operand records (range and extension mode), so any reassociation
   computes the same w-bit values.

   The rebuild is depth-aware rather than shape-balanced: leaves combine
   shallowest-first (a Huffman-style reduction over behavioural depth),
   so a deep subgraph feeding the chain is paired late and the root depth
   is minimized — this is also what rebalances the fanout of early
   chain stages.  Absorbed interiors become dead in the rebuilt graph
   and are dropped before returning. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module B = Hls_dfg.Builder
module Rewrite = Hls_opt.Rewrite

let chain_kind = function Add | Mul -> true | _ -> false

(* A two-operand Add/Mul node: a potential chain member. *)
let member (n : node) = chain_kind n.kind && List.length n.operands = 2

let run g =
  let nc = Graph.node_count g in
  let index = Graph.index g in
  let fanout id =
    List.length index.Graph.uses.(id) + List.length index.Graph.out_uses.(id)
  in
  (* Mark interiors: absorbed.(m) is set when m's unique consumer reads
     it full-range as the same kind/width/signedness chain member. *)
  let absorbed = Array.make (max 1 nc) false in
  Graph.iter_nodes
    (fun n ->
      if member n then
        List.iter
          (fun (o : operand) ->
            match o.src with
            | Node mid ->
                let m = Graph.node g mid in
                if
                  member m && m.kind = n.kind && m.width = n.width
                  && m.signedness = n.signedness
                  && fanout mid = 1 && o.lo = 0
                  && o.hi = m.width - 1
                then absorbed.(mid) <- true
            | Input _ | Const _ -> ())
          n.operands)
    g;
  (* Leaves of the chain rooted at n, left to right. *)
  let rec leaves (n : node) acc =
    List.fold_left
      (fun acc (o : operand) ->
        match o.src with
        | Node mid when absorbed.(mid) -> leaves (Graph.node g mid) acc
        | _ -> o :: acc)
      acc n.operands
  in
  let depths = Plan.node_depths g in
  let operand_depth (o : operand) =
    match o.src with Node id -> depths.(id) | _ -> 0
  in
  (* Root depth after a Huffman reduction over these leaf depths: the
     depth the rebuild below will actually produce. *)
  let predicted_depth ls =
    let rec reduce = function
      | [] | [ _ ] -> assert false
      | [ a; b ] -> 1 + max a b
      | a :: b :: rest -> reduce (List.sort compare ((1 + max a b) :: rest))
    in
    reduce (List.sort compare (List.map operand_depth ls))
  in
  let sites = ref [] in
  let graph =
    Rewrite.run g ~f:(fun ctx n ->
        let ls = if member n && not absorbed.(n.id) then leaves n [] else [] in
        (* Rebuild only chains the reduction strictly shallows: an
           already-balanced chain is left byte-identical, so the pass is
           idempotent and repeat(...) recipes converge instead of
           ping-ponging with canon until the round cap. *)
        if List.length ls < 3 || predicted_depth ls >= depths.(n.id) then
          Rewrite.copy ctx n
        else begin
          let ls = List.rev ls in
          (* Huffman-style reduction: always combine the two shallowest
             terms; the final combine keeps the root's label/origin. *)
          let rec build terms =
            match
              List.stable_sort (fun (_, da) (_, db) -> compare da db) terms
            with
            | [] | [ _ ] -> assert false
            | [ (a, _); (b, _) ] ->
                B.node ctx.Rewrite.b n.kind ~width:n.width
                  ~signedness:n.signedness ~label:n.label ?origin:n.origin
                  [ a; b ]
            | (a, da) :: (b, db) :: rest ->
                let o =
                  B.node ctx.Rewrite.b n.kind ~width:n.width
                    ~signedness:n.signedness [ a; b ]
                in
                build ((o, 1 + max da db) :: rest)
          in
          let chain_depth =
            List.fold_left (fun acc t -> max acc (operand_depth t)) 0 ls
            + List.length ls - 1
          in
          let balanced_bound =
            (* depth after balancing is at most ceil(log2 k) above the
               deepest leaf; report the intent, the plan records the
               measured effect *)
            let rec lg n acc = if n <= 1 then acc else lg ((n + 1) / 2) (acc + 1) in
            List.fold_left (fun acc t -> max acc (operand_depth t)) 0 ls
            + lg (List.length ls) 0
          in
          sites :=
            {
              Plan.at = n.id;
              note =
                Printf.sprintf "%d-leaf %s chain rebalanced (depth <= %d, was %d)"
                  (List.length ls)
                  (kind_to_string n.kind)
                  balanced_bound chain_depth;
            }
            :: !sites;
          build
            (List.map
               (fun o -> (Rewrite.map_operand ctx o, operand_depth o))
               ls)
        end)
  in
  (* The absorbed interiors were copied (nothing references the copies);
     drop them here so the plan reflects the real node-count effect. *)
  let graph = if !sites = [] then graph else Hls_opt.Dce.run graph in
  { Pass.graph; sites = List.rev !sites }
