(** Strength reduction: multiplication by a constant becomes a balanced
    shift/add-subtract network over the constant's CSD recoding, so the
    additive depth the scheduler sees is logarithmic in the digit count
    (the extractor's own constant-multiplier lowering is a linear
    chain). *)

val run : Hls_dfg.Graph.t -> Pass.result
