(* The pass manager and verification gate.  A recipe runs pass by pass;
   under the [Every_pass] policy each application is checked against its
   own input graph by differential simulation and rolled back on a
   mismatch (the rejection is recorded as a typed Hls_util.Failure, the
   recipe continues from the pre-pass graph); under [Sampled] one
   end-to-end check runs at the end and a mismatch rolls the whole
   recipe back.  Every application runs under a telemetry span with
   plan-size counters.

   Change detection is by digest of the printed graph (the same bytes
   the sweep cache keys on): a pass that rebuilds an identical graph is
   recorded as not fired, costs no verification, and terminates
   repeat(...) fixpoints. *)

module Graph = Hls_dfg.Graph
module Failure = Hls_util.Failure

type entry = {
  e_pass : string;
  e_plan : Plan.t;
  e_fired : bool;  (** the graph actually changed *)
  e_accepted : bool;  (** false: rolled back by the verify gate *)
  e_verdict : string option;
      (** rendered {!Hls_check.verdict} when this application was checked *)
  e_failure : Failure.t option;  (** the typed rejection, when rolled back *)
}

type outcome = {
  graph : Graph.t;
  log : entry list;
  checks : int;  (** equivalence checks run *)
  rejected : int;  (** applications rolled back *)
}

exception
  Rejected of {
    pass : string;
    verdict : string;  (** rendered counterexample *)
  }

let () =
  Printexc.register_printer (function
    | Rejected { pass; verdict } ->
        Some
          (Printf.sprintf "transformation %S rejected by the verify gate: %s"
             pass verdict)
    | _ -> None)

let digest g = Digest.to_hex (Digest.string (Format.asprintf "%a@." Graph.pp g))

let render_verdict v = Format.asprintf "%a" Hls_check.pp_verdict v

type state = {
  s_graph : Graph.t;
  s_digest : string;
  s_log : entry list;  (** reversed *)
  s_checks : int;
  s_rejected : int;
}

let span name f = Hls_telemetry.with_span ~cat:"xform" name f

let apply_pass ~policy ~samples ~seed st (p : Pass.t) =
  span p.Pass.name (fun () ->
      Hls_telemetry.count "xform.passes";
      let r = p.Pass.rewrite st.s_graph in
      let d' = digest r.Pass.graph in
      if String.equal d' st.s_digest then
        (* Nothing changed (possibly an identical rebuild): no plan, no
           verification, and repeat() fixpoints see no progress. *)
        let plan =
          Plan.make ~pass:p.Pass.name ~sites:[] ~before:st.s_graph
            ~after:st.s_graph
        in
        {
          st with
          s_log =
            {
              e_pass = p.Pass.name;
              e_plan = plan;
              e_fired = false;
              e_accepted = true;
              e_verdict = None;
              e_failure = None;
            }
            :: st.s_log;
        }
      else begin
        let plan =
          Plan.make ~pass:p.Pass.name ~sites:r.Pass.sites ~before:st.s_graph
            ~after:r.Pass.graph
        in
        Hls_telemetry.count ~n:(List.length r.Pass.sites) "xform.sites";
        Hls_telemetry.count
          ~n:(abs (plan.Plan.nodes_after - plan.Plan.nodes_before))
          "xform.nodes_delta";
        let verdict =
          match policy with
          | Verify.Every_pass ->
              Hls_telemetry.count "xform.checks";
              Some (Hls_check.equivalent ~samples ~seed st.s_graph r.Pass.graph)
          | Verify.Off | Verify.Sampled -> None
        in
        let checks = st.s_checks + if verdict = None then 0 else 1 in
        match verdict with
        | Some (Hls_check.Failed _ as v) ->
            (* Roll back: keep the pre-pass graph, surface the typed
               failure in the log. *)
            Hls_telemetry.count "xform.rejected";
            let rendered = render_verdict v in
            {
              st with
              s_checks = checks;
              s_rejected = st.s_rejected + 1;
              s_log =
                {
                  e_pass = p.Pass.name;
                  e_plan = plan;
                  e_fired = true;
                  e_accepted = false;
                  e_verdict = Some rendered;
                  e_failure =
                    Some
                      (Failure.Internal
                         (Rejected { pass = p.Pass.name; verdict = rendered }));
                }
                :: st.s_log;
            }
        | (Some (Hls_check.Proved | Hls_check.Passed _) | None) as v ->
            {
              s_graph = r.Pass.graph;
              s_digest = d';
              s_checks = checks;
              s_rejected = st.s_rejected;
              s_log =
                {
                  e_pass = p.Pass.name;
                  e_plan = plan;
                  e_fired = true;
                  e_accepted = true;
                  e_verdict = Option.map render_verdict v;
                  e_failure = None;
                }
                :: st.s_log;
            }
      end)

let max_rounds = 8

let rec apply_steps ~policy ~samples ~seed st steps =
  List.fold_left
    (fun st step ->
      match step with
      | Recipe.Apply p -> apply_pass ~policy ~samples ~seed st p
      | Recipe.Repeat body ->
          let rec go st round =
            if round >= max_rounds then st
            else
              let st' = apply_steps ~policy ~samples ~seed st body in
              if String.equal st'.s_digest st.s_digest then st'
              else go st' (round + 1)
          in
          go st 0)
    st steps

let apply ?(policy = Verify.Off) ?(samples = 40) ?(seed = 9)
    (recipe : Recipe.t) g0 =
  span "recipe" (fun () ->
      let st0 =
        {
          s_graph = g0;
          s_digest = digest g0;
          s_log = [];
          s_checks = 0;
          s_rejected = 0;
        }
      in
      let st = apply_steps ~policy ~samples ~seed st0 recipe.Recipe.steps in
      (* The sampled policy checks the whole recipe once, end to end, and
         rolls everything back on a mismatch. *)
      let st =
        if
          policy = Verify.Sampled
          && not (String.equal st.s_digest st0.s_digest)
        then begin
          Hls_telemetry.count "xform.checks";
          let v = Hls_check.equivalent ~samples ~seed g0 st.s_graph in
          let rendered = render_verdict v in
          let plan =
            Plan.make ~pass:"verify" ~sites:[] ~before:g0 ~after:st.s_graph
          in
          match v with
          | Hls_check.Proved | Hls_check.Passed _ ->
              {
                st with
                s_checks = st.s_checks + 1;
                s_log =
                  {
                    e_pass = "verify";
                    e_plan = plan;
                    e_fired = false;
                    e_accepted = true;
                    e_verdict = Some rendered;
                    e_failure = None;
                  }
                  :: st.s_log;
              }
          | Hls_check.Failed _ ->
              Hls_telemetry.count "xform.rejected";
              {
                s_graph = g0;
                s_digest = st0.s_digest;
                s_checks = st.s_checks + 1;
                s_rejected = st.s_rejected + 1;
                s_log =
                  {
                    e_pass = "verify";
                    e_plan = plan;
                    e_fired = false;
                    e_accepted = false;
                    e_verdict = Some rendered;
                    e_failure =
                      Some
                        (Failure.Internal
                           (Rejected { pass = recipe.Recipe.spec; verdict = rendered }));
                  }
                  :: st.s_log;
              }
        end
        else st
      in
      {
        graph = st.s_graph;
        log = List.rev st.s_log;
        checks = st.s_checks;
        rejected = st.s_rejected;
      })

(* Entries worth showing: everything that fired or was checked. *)
let fired_entries o = List.filter (fun e -> e.e_fired || e.e_verdict <> None) o.log

let pp_entry ppf e =
  Format.fprintf ppf "%s %a%s"
    (if not e.e_accepted then "REJECTED"
     else if e.e_fired then "applied "
     else "no-op   ")
    Plan.pp e.e_plan
    (match e.e_verdict with None -> "" | Some v -> " [" ^ v ^ "]")

let pp_log ppf o =
  match fired_entries o with
  | [] -> Format.pp_print_string ppf "no pass fired"
  | entries ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
        pp_entry ppf entries
