(** Generator-facing builders for well-formed behavioural specifications.

    The fuzzing front end (and any programmatic producer of specs) needs to
    assemble {!Ast.t} values that are guaranteed to elaborate: every width
    rule the elaborator enforces is mirrored here at construction time, so
    an expression carries the width and signedness elaboration will infer
    for it.  Constructors raise {!Ill_formed} on violations — the generator
    treats that as a bug in itself, not in the flow under test. *)

exception Ill_formed of string

(** An expression annotated with the width/signedness elaboration assigns. *)
type expr = private { e : Ast.expr; width : int; signed : bool }

val ref_ : name:string -> width:int -> signed:bool -> expr
(** Full read of a declared input or previously assigned variable. *)

val lit : value:int -> width:int -> expr
(** Sized, non-negative literal.  Raises {!Ill_formed} if [value] is
    negative or does not fit in [width] bits — negative constants must be
    spelled [sub (lit 0) c] so the printed source re-parses identically. *)

val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val mul : expr -> expr -> expr

val cmp : Ast.binop -> expr -> expr -> expr
(** One of the comparison operators; raises on arithmetic binops. *)

val neg : expr -> expr
val max_ : expr -> expr -> expr
val min_ : expr -> expr -> expr
val concat : expr -> expr -> expr

val slice : expr -> hi:int -> lo:int -> expr
(** Bit-select of a parenthesized expression; requires [0 <= lo <= hi]
    and [hi < width e]. *)

val ternary : cond:expr -> expr -> expr -> expr
(** Multiplexer; [cond] must be exactly 1 bit wide. *)

type stmt

val assign : name:string -> width:int -> expr -> stmt
(** [assign ~name ~width e] binds a variable or output declared [width]
    bits wide.  The value is extended when narrower; raises {!Ill_formed}
    when wider (the elaborator rejects silent truncation). *)

type decl

val input : name:string -> width:int -> signed:bool -> decl
val output : name:string -> width:int -> decl
val var : name:string -> width:int -> decl

val module_ : name:string -> decls:decl list -> stmts:stmt list -> Ast.t

val to_source : Ast.t -> string
(** Render back to concrete [hls_speclang] syntax.  The output of
    {!Ast.pp} is parse-compatible for everything these builders can
    construct (all literals are sized and non-negative). *)
