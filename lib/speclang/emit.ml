(** Emit a graph back as specification-language source.

    Covers the behavioural subset plus [Concat] / [Wire] — everything a
    transformed (fragmented) pure-addition specification contains — so a
    transformed graph can be printed, re-parsed and re-elaborated; the
    round trip is checked by simulation in the test-suite and fuzzed by
    [lib/fuzz]'s spec lane.  Kernel glue ([Gate], [Reduce_or], …) has no
    source syntax: use {!Vhdl} for those.

    Signedness fidelity is the subtle part.  Two independent properties
    of every operand must survive the round trip:

    - its {e value signedness} — what the language's inference sees.  The
      or (binops, min/max) of the operand value signednesses becomes the
      node's signedness, which the simulator uses for multiplies and
      comparisons.  A variable read takes its declaration's signedness,
      so an operand that must contribute differently than its source
      declares is routed through an {e alias} variable declared with the
      wanted signedness (a width-equal alias assignment elaborates to
      nothing).
    - its {e extension mode} — the [Sext]/[Zext] recorded on the edge,
      which the simulator honours when widening min/max/mux operands and
      when extending both comparison sides by one bit.  Elaboration
      derives it structurally: binop operands get it from their value
      signedness, but min/max/mux keep the operand of the producing
      expression verbatim, so the mode {e leaks} from the producer.  The
      emitter tracks the mode each emitted variable will leak and, where
      a consumer needs the other one, wraps the alias's right-hand side
      in a bit-identical normalizer: [-(-x)] elaborates to a signed-
      leaking pair of negations, [((0'1 & x))[w-1:0]] to an unsigned-
      leaking pad-and-slice. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module Operand = Hls_dfg.Operand

exception Unprintable of string

let binop_of_kind = function
  | Add -> Some "+"
  | Sub -> Some "-"
  | Mul -> Some "*"
  | Lt -> Some "<"
  | Le -> Some "<="
  | Gt -> Some ">"
  | Ge -> Some ">="
  | Eq -> Some "=="
  | Neq -> Some "!="
  | _ -> None

let emit graph =
  let names = Names.assign graph in
  let used = Hashtbl.create 64 in
  let mark n = Hashtbl.replace used (String.lowercase_ascii n) () in
  List.iter (fun p -> mark p.port_name) graph.Graph.inputs;
  List.iter (fun (n, _) -> mark n) graph.Graph.outputs;
  Array.iter mark names;
  let dbuf = Buffer.create 512 and sbuf = Buffer.create 1024 in
  let decl fmt = Printf.ksprintf (Buffer.add_string dbuf) fmt in
  let stmt fmt = Printf.ksprintf (Buffer.add_string sbuf) fmt in
  let operand_src (o : operand) =
    let base, w =
      match o.src with
      | Input name -> (name, Graph.source_width graph o.src)
      | Node id -> (names.(id), (Graph.node graph id).width)
      | Const bv ->
          ( Printf.sprintf "%d'%d"
              (Hls_bitvec.to_int bv)
              (Hls_bitvec.width bv),
            Hls_bitvec.width bv )
    in
    if o.lo = 0 && o.hi = w - 1 then base
    else
      (* Slices attach to identifiers and parenthesized expressions only,
         so a sliced constant needs the parens: [(28'5)[2:1]]. *)
      let base =
        match o.src with Const _ -> "(" ^ base ^ ")" | _ -> base
      in
      Printf.sprintf "%s[%d:%d]" base o.hi o.lo
  in
  (* Whether the operand reads its source in full (a partial slice is
     plain bits in the language — always unsigned on re-elaboration). *)
  let is_full (o : operand) =
    o.lo = 0 && o.hi = Graph.source_width graph o.src - 1
  in
  let port_signed name =
    match
      List.find_opt (fun p -> p.port_name = name) graph.Graph.inputs
    with
    | Some p -> p.port_signed = Signed
    | None -> false
  in
  (* Value signedness of a plain source-level read of the operand: inputs
     carry their port signedness, primary node vars are declared unsigned
     below, constants print as non-negative literals. *)
  let value_nat (o : operand) =
    is_full o
    && match o.src with Input n -> port_signed n | Node _ | Const _ -> false
  in
  (* The extension mode a plain read will leak into a verbatim-keeping
     consumer (min/max/mux): slicing preserves it, so it depends only on
     the source.  [leaks] records it for each emitted node var. *)
  let leaks = Hashtbl.create 64 in
  let leak_nat (o : operand) =
    match o.src with
    | Input n -> port_signed n
    | Const _ -> false
    | Node id -> ( try Hashtbl.find leaks id with Not_found -> false)
  in
  let ext_signed (o : operand) = o.ext = Sext in
  (* Render the operand so that its re-elaborated read has value
     signedness [value] and (when [ext] is given) leaks that extension
     mode; bit-identical by construction. *)
  let aliases = Hashtbl.create 16 in
  let styled ?ext ~value (o : operand) =
    let natural_value = value_nat o and natural_leak = leak_nat o in
    let leak = Option.value ext ~default:natural_leak in
    if natural_value = value && natural_leak = leak then operand_src o
    else
      let key = (o.src, o.hi, o.lo, value, leak) in
      match Hashtbl.find_opt aliases key with
      | Some n -> n
      | None ->
          let base =
            match o.src with
            | Input name -> name
            | Node id -> names.(id)
            | Const bv -> Printf.sprintf "k%d" (Hls_bitvec.to_int bv)
          in
          let rec fresh cand k =
            if Hashtbl.mem used (String.lowercase_ascii cand) then
              fresh (Printf.sprintf "%s_%d" cand k) (k + 1)
            else cand
          in
          let name =
            fresh (base ^ if value then "_sgn" else "_uns") 1
          in
          mark name;
          let w = Operand.width o in
          decl "var %s : %d%s;\n" name w (if value then " signed" else "");
          let src = operand_src o in
          let rhs =
            if leak = natural_leak then src
            else if leak then Printf.sprintf "-(-(%s))" src
            else Printf.sprintf "((0'1 & %s))[%d:0]" src (w - 1)
          in
          stmt "%s = %s;\n" name rhs;
          Hashtbl.add aliases key name;
          name
  in
  (* An operand of a binop (whose extension mode re-elaboration derives
     from the value signedness): returns the rendered text and the value
     signedness it contributes.  Zero extension is explicit padding — the
     "0 &" idiom of the paper's Fig. 2a, which also keeps a carry-wide
     add at its full width; sign extension rides on a signed alias and
     the language's own max-width widening.  Wider operands are sliced
     down explicitly. *)
  let operand_at ~width (o : operand) =
    let w = Operand.width o in
    if w > width then
      (Printf.sprintf "(%s)[%d:0]" (operand_src o) (width - 1), false)
    else if w = width then (operand_src o, value_nat o)
    else if o.ext = Zext then
      (Printf.sprintf "(0'%d & %s)" (width - w) (operand_src o), false)
    else (styled o ~value:true, true)
  in
  (* Slice an expression of width [have] down to [want] bits; narrower
     expressions are left alone — the assignment's coercion widens them
     by the value signedness, which matches the node's own extension. *)
  let wrap expr ~have ~want =
    if have > want then Printf.sprintf "(%s)[%d:0]" expr (want - 1)
    else expr
  in
  Graph.iter_nodes
    (fun n ->
      let o i = List.nth n.operands i in
      let w = n.width in
      let signed = n.signedness = Signed in
      let record leak = Hashtbl.replace leaks n.id leak in
      let rhs =
        match n.kind with
        | Add -> (
            match n.operands with
            | [ a; b ] ->
                let ta, sa = operand_at ~width:w a
                and tb, sb = operand_at ~width:w b in
                record (sa || sb);
                Printf.sprintf "%s + %s" ta tb
            | [ a; b; c ] ->
                let ta, sa = operand_at ~width:w a
                and tb, sb = operand_at ~width:w b in
                record (sa || sb);
                Printf.sprintf "%s + %s + %s" ta tb (operand_src c)
            | _ -> raise (Unprintable "malformed add"))
        | Sub ->
            let ta, sa = operand_at ~width:w (o 0)
            and tb, sb = operand_at ~width:w (o 1) in
            record (sa || sb);
            Printf.sprintf "%s - %s" ta tb
        | Neg ->
            let t, s = operand_at ~width:w (o 0) in
            record s;
            Printf.sprintf "-%s" t
        | Mul ->
            (* The simulator multiplies the raw factors per the node's
               signedness; re-elaboration infers it as the or of the
               factors' value signednesses, which the recorded extension
               modes preserve exactly — when the or lands right. *)
            let sa = ext_signed (o 0) and sb = ext_signed (o 1) in
            if (sa || sb) <> signed then
              raise (Unprintable "mul signedness is not operand-borne");
            record signed;
            wrap
              (Printf.sprintf "%s * %s"
                 (styled (o 0) ~value:sa)
                 (styled (o 1) ~value:sb))
              ~have:(Operand.width (o 0) + Operand.width (o 1))
              ~want:w
        | Lt | Le | Gt | Ge | Eq | Neq -> (
            (* Comparison operands are extended by one bit each per their
               recorded modes, which re-elaboration re-derives from the
               value signednesses; for the ordered comparisons the
               inferred or must also land back on the node. *)
            let sa = ext_signed (o 0) and sb = ext_signed (o 1) in
            let ordered =
              match n.kind with Lt | Le | Gt | Ge -> true | _ -> false
            in
            if ordered && (sa || sb) <> signed then
              raise (Unprintable "comparison signedness is not operand-borne");
            record (sa || sb);
            match binop_of_kind n.kind with
            | Some op ->
                Printf.sprintf "%s %s %s"
                  (styled (o 0) ~value:sa)
                  op
                  (styled (o 1) ~value:sb)
            | None -> assert false)
        | Max | Min ->
            (* The comparison honours each operand's recorded extension
               mode and the node's signedness; the chosen side is widened
               by its own mode.  Value signednesses are free as long as
               their or reproduces the node, so flip the first operand
               when nothing carries a needed signedness naturally. *)
            let name = if n.kind = Max then "max" else "min" in
            let nat0 = value_nat (o 0) and nat1 = value_nat (o 1) in
            let v0, v1 =
              if not signed then (false, false)
              else if nat0 || nat1 then (nat0, nat1)
              else (true, false)
            in
            record signed;
            wrap
              (Printf.sprintf "%s(%s, %s)" name
                 (styled (o 0) ~value:v0 ~ext:(ext_signed (o 0)))
                 (styled (o 1) ~value:v1 ~ext:(ext_signed (o 1))))
              ~have:(max (Operand.width (o 0)) (Operand.width (o 1)))
              ~want:w
        | Mux ->
            (* Branches narrower than the node are widened by their
               recorded modes, kept verbatim through re-elaboration; the
               node itself always re-elaborates unsigned. *)
            let bw x =
              if Operand.width x < w then
                styled x ~value:(value_nat x) ~ext:(ext_signed x)
              else operand_src x
            in
            record false;
            wrap
              (Printf.sprintf "%s ? %s : %s"
                 (operand_src (o 0))
                 (bw (o 1)) (bw (o 2)))
              ~have:(max (Operand.width (o 1)) (Operand.width (o 2)))
              ~want:w
        | Wire ->
            let t, s = operand_at ~width:w (o 0) in
            record (if Operand.width (o 0) < w then s else leak_nat (o 0));
            t
        | Concat ->
            (* Operands are least-significant-first; the language's [&]
               puts the left operand on top. *)
            record false;
            List.rev_map operand_src n.operands |> String.concat " & "
        | k ->
            raise
              (Unprintable
                 (Printf.sprintf "%s has no specification syntax"
                    (kind_to_string k)))
      in
      decl "var %s : %d;\n" names.(n.id) n.width;
      stmt "%s = %s;\n" names.(n.id) rhs)
    graph;
  List.iter
    (fun (name, o) -> stmt "%s = %s;\n" name (operand_src o))
    graph.Graph.outputs;
  let buf = Buffer.create (Buffer.length dbuf + Buffer.length sbuf + 256) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "module %s;\n" (Names.sanitize (Graph.name graph));
  List.iter
    (fun p ->
      add "input %s : %d%s;\n" p.port_name p.port_width
        (if p.port_signed = Signed then " signed" else ""))
    graph.Graph.inputs;
  List.iter
    (fun (name, o) -> add "output %s : %d;\n" name (Operand.width o))
    graph.Graph.outputs;
  Buffer.add_buffer buf dbuf;
  Buffer.add_buffer buf sbuf;
  add "end\n";
  Buffer.contents buf
