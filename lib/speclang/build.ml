(* Width-checked AST construction.  Each rule below mirrors one case of
   [Elaborate.elab]; keeping them in lockstep is what lets the fuzzer's
   generator promise "everything I emit elaborates". *)

exception Ill_formed of string

let ill fmt = Format.kasprintf (fun m -> raise (Ill_formed m)) fmt

type expr = { e : Ast.expr; width : int; signed : bool }

let ref_ ~name ~width ~signed =
  if width <= 0 then ill "ref %s: width %d" name width;
  { e = Ast.Ref (name, None); width; signed }

let lit ~value ~width =
  if value < 0 then ill "literal %d: negative literals do not round-trip" value;
  if width <= 0 || (width < 63 && value lsr width <> 0) then
    ill "literal %d does not fit in %d bits" value width;
  { e = Ast.Lit { value; width = Some width }; width; signed = false }

let arith op a b =
  let signed = a.signed || b.signed in
  let width =
    match op with
    | Ast.Mul -> a.width + b.width
    | _ -> max a.width b.width
  in
  { e = Ast.Binop (op, a.e, b.e); width; signed }

let add a b = arith Ast.Add a b
let sub a b = arith Ast.Sub a b
let mul a b = arith Ast.Mul a b

let cmp op a b =
  (match op with
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Neq -> ()
  | Ast.Add | Ast.Sub | Ast.Mul -> ill "cmp: %s" (Ast.binop_to_string op));
  { e = Ast.Binop (op, a.e, b.e); width = 1; signed = false }

let neg a = { e = Ast.Unop (Ast.Neg, a.e); width = a.width; signed = true }

let call c a b =
  {
    e = Ast.Call (c, a.e, b.e);
    width = max a.width b.width;
    signed = a.signed || b.signed;
  }

let max_ a b = call Ast.Max a b
let min_ a b = call Ast.Min a b

let concat a b =
  { e = Ast.Concat (a.e, b.e); width = a.width + b.width; signed = false }

let slice x ~hi ~lo =
  if lo < 0 || hi < lo then ill "slice [%d:%d]" hi lo;
  if hi >= x.width then
    ill "slice [%d:%d] exceeds expression width %d" hi lo x.width;
  {
    e = Ast.Slice (x.e, { Ast.r_hi = hi; r_lo = lo });
    width = hi - lo + 1;
    signed = false;
  }

let ternary ~cond t e =
  if cond.width <> 1 then
    ill "ternary condition must be 1 bit, got %d" cond.width;
  {
    e = Ast.Ternary (cond.e, t.e, e.e);
    width = max t.width e.width;
    signed = t.signed && e.signed;
  }

type stmt = Ast.stmt

let assign ~name ~width x =
  if x.width > width then
    ill "%s: expression of width %d does not fit in %d bits" name x.width width;
  { Ast.s_target = name; s_range = None; s_expr = x.e }

type decl = Ast.decl

let decl kind name width signed =
  if width <= 0 then ill "decl %s: width %d" name width;
  { Ast.d_kind = kind; d_name = name; d_width = width; d_signed = signed }

let input ~name ~width ~signed = decl Ast.Input name width signed
let output ~name ~width = decl Ast.Output name width false
let var ~name ~width = decl Ast.Var name width false

let module_ ~name ~decls ~stmts = { Ast.name; decls; stmts }

let to_source ast = Format.asprintf "%a" Ast.pp ast
