(* Per-backend health state machine.

     Healthy --[eject_after consecutive failures]--> Ejected
     Ejected --[cooldown elapsed, trial granted]--> Half_open
     Half_open --[success]--> Healthy
     Half_open --[failure]--> Ejected (cooldown restarts)

   Time is always passed in (~now) so tests drive the machine without
   sleeping.  The router grants the half-open trial to its periodic
   probe, never to user traffic: a recovering backend proves itself on a
   ping before real work lands on it again. *)

type state = Healthy | Ejected of float  (** when *) | Half_open

type t = {
  eject_after : int;
  cooldown_s : float;
  mutable fails : int;  (** consecutive failures *)
  mutable state : state;
}

let make ?(eject_after = 3) ?(cooldown_s = 2.0) () =
  if eject_after < 1 then invalid_arg "Health.make: eject_after < 1";
  { eject_after; cooldown_s; fails = 0; state = Healthy }

let state t = t.state
let is_routable t = t.state = Healthy

let record_success t =
  t.fails <- 0;
  t.state <- Healthy

let record_failure ~now t =
  match t.state with
  | Half_open ->
      (* The trial failed: back to ejection, cooldown restarts. *)
      t.fails <- t.eject_after;
      t.state <- Ejected now
  | Healthy ->
      t.fails <- t.fails + 1;
      if t.fails >= t.eject_after then t.state <- Ejected now
  | Ejected _ -> t.fails <- t.fails + 1

(* Grant at most one half-open trial per cooldown: the caller that gets
   [true] owns the trial and must settle it with record_success or
   record_failure. *)
let trial_due ~now t =
  match t.state with
  | Ejected at when now -. at >= t.cooldown_s ->
      t.state <- Half_open;
      true
  | _ -> false
