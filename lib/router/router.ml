(* The front-end router: one process that owns client connections and
   fans requests out over N backend daemons.

   Everything runs in a single coordinator select loop, like the server:
   client lines are decoded, admitted against a bounded in-flight cap,
   and consistent-hashed by graph digest onto a backend (digest affinity
   keeps each design's memoized prepare prefix and WAL cache hot on one
   shard).  Requests are forwarded with rewritten ids ("r<seq>"), and
   responses are re-encoded under the original id — the response codec
   round-trips exactly, so a routed answer is byte-identical to a
   one-shot one.

   Failure handling:
   - every backend answer (even an error) proves liveness; transport
     failures and probe timeouts count against a consecutive-failure
     budget (Health), ejecting the backend until a half-open probe
     succeeds;
   - in-flight requests on a dead backend fail over to the next replica
     clockwise (all verbs are pure queries, so replays are safe) under a
     Retry_policy backoff; when the budget is spent the client gets a
     retryable Unavailable;
   - explore requests with several latencies scatter their latency axis
     over the routable backends and the shard frontiers merge through
     Merge (feedback sweeps don't scatter: refinement is global);
   - router-owned backends ([spawn]) are reaped with waitpid and
     respawned when they die.

   Shedding is end to end: Overloaded (exit 6) when the in-flight cap is
   hit, the request's own deadline when it expires, Unavailable (exit 8)
   when no healthy backend exists or shutdown cuts the drain short. *)

module R = Hls_api.Request
module Resp = Hls_api.Response
module Client = Hls_server.Client
module Retry_policy = Hls_pool.Retry_policy
module Faults = Hls_util.Faults

type spawn = {
  count : int;
  command : int -> string array;  (** index -> argv (argv.(0) = program) *)
  socket_of : int -> string;  (** index -> socket path the child serves *)
}

type config = {
  socket : string option;
  listen : (string * int) option;
  backends : string list;  (** externally managed backend addresses *)
  spawn : spawn option;
  max_inflight : int;
  retry : Retry_policy.t;
  probe_interval_s : float;
  probe_timeout_s : float;
  eject_after : int;
  cooldown_s : float;
  hold_s : float;  (** how long an unroutable request waits for a backend *)
  grace_s : float;
  io_timeout_s : float option;
      (** SO_SNDTIMEO on accepted client connections: a client that
          stops reading is dropped instead of wedging the coordinator *)
  max_line : int;
}

let default_config () =
  {
    socket = None;
    listen = None;
    backends = [];
    spawn = None;
    max_inflight = 256;
    retry = Retry_policy.make ~attempts:3 ~backoff_s:0.05 ();
    probe_interval_s = 0.5;
    probe_timeout_s = 2.0;
    eject_after = 3;
    cooldown_s = 1.0;
    hold_s = 5.0;
    grace_s = 5.0;
    io_timeout_s = Some 30.0;
    max_line = 8 * 1024 * 1024;
  }

type stats = {
  served : int Atomic.t;  (** responses delivered to clients *)
  failovers : int Atomic.t;  (** in-flight requests re-routed *)
  respawns : int Atomic.t;  (** dead children restarted *)
  shed : int Atomic.t;  (** Overloaded / Unavailable / deadline answers *)
  healthy : int Atomic.t;  (** routable backends, updated each sweep *)
}

let make_stats () =
  {
    served = Atomic.make 0;
    failovers = Atomic.make 0;
    respawns = Atomic.make 0;
    shed = Atomic.make 0;
    healthy = Atomic.make 0;
  }

(* ------------------------------------------------------------------ *)
(* Affinity keys.                                                      *)

(* The routing key is the elaborated graph's digest whenever the spec
   can be elaborated router-side (Source text, Builtin names) — the same
   digest that keys the backend's prepare memo and sweep cache.  File
   paths resolve on the executing side, so their key is the path. *)
let affinity_key =
  let memo : (R.spec, string) Hashtbl.t = Hashtbl.create 64 in
  fun req ->
    match R.spec_of req with
    | None -> "ping"
    | Some spec -> (
        match Hashtbl.find_opt memo spec with
        | Some k -> k
        | None ->
            let k =
              match spec with
              | R.Builtin name -> (
                  match Hls_workloads.Catalog.find_graph name with
                  | Some g -> Hls_dse.Cache.graph_digest g
                  | None -> "builtin:" ^ name)
              | R.Source src -> (
                  match Hls_speclang.Elaborate.from_string_result src with
                  | Ok g -> Hls_dse.Cache.graph_digest g
                  | Error _ -> Digest.to_hex (Digest.string src))
              | R.File path -> "file:" ^ path
            in
            if Hashtbl.length memo > 4096 then Hashtbl.reset memo;
            Hashtbl.add memo spec k;
            k)

(* ------------------------------------------------------------------ *)
(* Connections (client side of the router and router side of a
   backend share the same line framing).                               *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable alive : bool;
}

let write_line conn s =
  if conn.alive then begin
    let line = s ^ "\n" in
    let len = String.length line in
    let len, truncate =
      match Faults.on_net_write ~len with
      | Some l -> (min l len, true)
      | None -> (len, false)
    in
    let rec go off =
      if off < len then
        match Unix.write_substring conn.fd line off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            conn.alive <- false
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
            conn.alive <- false
    in
    go 0;
    if truncate && conn.alive then begin
      (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      conn.alive <- false
    end
  end

let read_into conn =
  Faults.on_read ();
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.alive <- false
  | n -> Buffer.add_subbytes conn.buf chunk 0 n
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> conn.alive <- false
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* Pop complete lines out of the buffer. *)
let split_lines conn =
  let data = Buffer.contents conn.buf in
  let n = String.length data in
  let lines = ref [] in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | nl ->
           lines := String.sub data !start (nl - !start) :: !lines;
           start := nl + 1
       | exception Not_found -> raise Exit
     done
   with Exit -> ());
  Buffer.clear conn.buf;
  Buffer.add_substring conn.buf data !start (n - !start);
  List.rev !lines

(* A bounded one-shot ping for fleet boot: SO_RCVTIMEO/SO_SNDTIMEO keep
   a child that accepts the connection but never answers (or never
   reads) from wedging startup — the blocking Client.call would wait on
   input_line forever. *)
let ping_once ?(timeout_s = 0.5) address =
  match Client.connect_fd address with
  | Error _ -> false
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          let line = Hls_dse.Dse_json.to_string (R.to_json R.Ping) ^ "\n" in
          match Unix.write_substring fd line 0 (String.length line) with
          | exception Unix.Unix_error _ -> false
          | _ ->
              let buf = Buffer.create 64 in
              let chunk = Bytes.create 4096 in
              let rec read_reply () =
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> false
                | n ->
                    Buffer.add_subbytes buf chunk 0 n;
                    String.contains (Buffer.contents buf) '\n' || read_reply ()
                | exception
                    Unix.Unix_error
                      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
                  ->
                    false
                | exception Unix.Unix_error _ -> false
              in
              read_reply ()
              &&
              let data = Buffer.contents buf in
              let first = String.sub data 0 (String.index data '\n') in
              match Resp.of_string first with
              | Ok { Resp.result = Ok _; _ } -> true
              | _ -> false)

(* ------------------------------------------------------------------ *)
(* Backends.                                                           *)

type backend = {
  b_name : string;  (** address string; also the ring name *)
  b_address : Client.address;
  b_spawn_index : int option;
  mutable b_pid : int option;
  mutable b_conn : conn option;
  b_health : Health.t;
  mutable b_probe : (string * float) option;  (** outstanding (id, sent) *)
}

(* ------------------------------------------------------------------ *)
(* In-flight requests.                                                 *)

type gather = {
  g_client : conn;
  g_id : string option;
  g_total : int;
  mutable g_parts : (int * Hls_dse.Explore.t) list;
  mutable g_done : bool;  (** answered (merged or failed); drop stragglers *)
}

type inflight = {
  i_seq : int;
  i_client : conn;
  i_id : string option;
  i_deadline : float option;
  i_req : R.t;
  i_key : string;
  i_enqueued : float;
  mutable i_attempt : int;  (** dispatches so far *)
  mutable i_excluded : string list;
  mutable i_backend : string option;  (** where it is right now *)
  i_gather : (gather * int) option;  (** parent, shard index *)
}

let now_ms () = Unix.gettimeofday () *. 1e3

let expired_timeout deadline_ms =
  Hls_util.Failure.Timeout (max 0. ((now_ms () -. deadline_ms) /. 1e3))

(* ------------------------------------------------------------------ *)
(* The router.                                                         *)

let unix_listener path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try if Sys.file_exists path then Sys.remove path
   with Sys_error _ -> ());
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let tcp_listener (host, port) =
  let ip =
    match Client.resolve_host host with
    | Ok a -> a
    | Error m -> invalid_arg ("Router.serve: " ^ m)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (ip, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let serve ?(stop = Atomic.make false) ?(handle_signals = false)
    ?(stats = make_stats ()) ?(log = fun _ -> ()) cfg =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  if handle_signals then begin
    let quit = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
    Sys.set_signal Sys.sigterm quit;
    Sys.set_signal Sys.sigint quit
  end;
  let listeners =
    (match cfg.socket with None -> [] | Some p -> [ unix_listener p ])
    @ match cfg.listen with None -> [] | Some hp -> [ tcp_listener hp ]
  in
  if listeners = [] then
    invalid_arg "Router.serve: no endpoint (need a socket path or listen)";
  (* ---- backend table --------------------------------------------- *)
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let spawn_child (sp : spawn) i =
    let argv = sp.command i in
    (try if Sys.file_exists (sp.socket_of i) then Sys.remove (sp.socket_of i)
     with Sys_error _ -> ());
    Unix.create_process argv.(0) argv devnull devnull Unix.stderr
  in
  let mk_backend ?spawn_index ?pid name =
    {
      b_name = name;
      b_address = Client.parse_address name;
      b_spawn_index = spawn_index;
      b_pid = pid;
      b_conn = None;
      b_health =
        Health.make ~eject_after:cfg.eject_after ~cooldown_s:cfg.cooldown_s ();
      b_probe = None;
    }
  in
  let backends =
    List.map (fun name -> mk_backend name) cfg.backends
    @
    match cfg.spawn with
    | None -> []
    | Some sp ->
        List.init sp.count (fun i ->
            let pid = spawn_child sp i in
            log (Printf.sprintf "spawned backend %d (pid %d) on %s" i pid
                   (sp.socket_of i));
            mk_backend ~spawn_index:i ~pid (sp.socket_of i))
  in
  if backends = [] then invalid_arg "Router.serve: no backends";
  let backend_tbl = Hashtbl.create 8 in
  List.iter (fun b -> Hashtbl.replace backend_tbl b.b_name b) backends;
  let ring = Ring.make (List.map (fun b -> b.b_name) backends) in
  (* Wait for spawned children to come up so early requests don't burn
     through the hold window while the fleet boots.  Each attempt is a
     bounded ping_once, so the 10 s deadline holds even against a child
     that accepts the connection and then never answers. *)
  (match cfg.spawn with
  | None -> ()
  | Some sp ->
      let deadline = Unix.gettimeofday () +. 10. in
      List.iter
        (fun i ->
          let addr = Client.parse_address (sp.socket_of i) in
          let rec wait () =
            if Unix.gettimeofday () < deadline && not (ping_once addr) then begin
              Unix.sleepf 0.05;
              wait ()
            end
          in
          wait ())
        (List.init sp.count Fun.id));
  (* ---- shared mutable state -------------------------------------- *)
  let clients = ref [] in
  let inflight_tbl : (int, inflight) Hashtbl.t = Hashtbl.create 64 in
  let waiting : (inflight * float) Queue.t = Queue.create () in
  let seq = ref 0 in
  let probe_seq = ref 0 in
  let last_probe = ref 0. in
  let inflight_load () = Hashtbl.length inflight_tbl + Queue.length waiting in
  let respond_client conn resp =
    write_line conn (Resp.to_string resp);
    Atomic.incr stats.served
  in
  let shed conn ?id error =
    Atomic.incr stats.shed;
    Hls_telemetry.count "router.shed";
    respond_client conn (Resp.fail ?id error)
  in
  (* ---- backend connectivity -------------------------------------- *)
  let close_bconn b =
    (match b.b_conn with
    | Some c ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        c.alive <- false
    | None -> ());
    b.b_conn <- None;
    b.b_probe <- None
  in
  let ensure_conn b =
    match b.b_conn with
    | Some c when c.alive -> Some c
    | _ -> (
        close_bconn b;
        match Client.connect_fd b.b_address with
        | Error _ -> None
        | Ok fd ->
            (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO cfg.probe_timeout_s
             with Unix.Unix_error _ | Invalid_argument _ -> ());
            let c = { fd; buf = Buffer.create 256; alive = true } in
            b.b_conn <- Some c;
            Some c)
  in
  (* ---- failover --------------------------------------------------- *)
  let reroute_failure reason =
    Hls_util.Failure.Internal (Hls_util.Failure.Remote reason)
  in
  let give_up fl reason =
    Hashtbl.remove inflight_tbl fl.i_seq;
    match fl.i_gather with
    | Some (g, _) when g.g_done -> ()
    | Some (g, _) ->
        g.g_done <- true;
        shed g.g_client ?id:g.g_id (Resp.Unavailable reason)
    | None -> shed fl.i_client ?id:fl.i_id (Resp.Unavailable reason)
  in
  let reroute now fl reason =
    (* Back into the waiting queue only: leaving the entry in
       inflight_tbl too would double-count it in inflight_load and shed
       Overloaded prematurely under failover churn.  dispatch re-enters
       it when it lands on a backend again. *)
    Hashtbl.remove inflight_tbl fl.i_seq;
    (match fl.i_backend with
    | Some name when not (List.mem name fl.i_excluded) ->
        fl.i_excluded <- name :: fl.i_excluded
    | _ -> ());
    fl.i_backend <- None;
    if Retry_policy.should_retry cfg.retry ~attempt:fl.i_attempt
         (reroute_failure reason)
    then begin
      Atomic.incr stats.failovers;
      Hls_telemetry.count "router.failovers";
      let delay = Retry_policy.delay_s cfg.retry ~attempt:fl.i_attempt ~job:fl.i_seq in
      Queue.add (fl, now +. delay) waiting
    end
    else
      give_up fl
        (Printf.sprintf "backend failed (%s); retry budget exhausted" reason)
  in
  let fail_backend now b reason =
    close_bconn b;
    Health.record_failure ~now b.b_health;
    Hls_telemetry.count "router.backend_failures";
    (match Health.state b.b_health with
    | Health.Ejected _ -> log (Printf.sprintf "backend %s ejected (%s)" b.b_name reason)
    | _ -> ());
    let stranded =
      Hashtbl.fold
        (fun _ fl acc ->
          if fl.i_backend = Some b.b_name then fl :: acc else acc)
        inflight_tbl []
    in
    List.iter (fun fl -> reroute now fl reason) stranded
  in
  (* ---- dispatch --------------------------------------------------- *)
  let send_to_backend b fl =
    match ensure_conn b with
    | None -> false
    | Some c ->
        let line =
          Hls_dse.Dse_json.to_string
            (R.to_json
               ~id:("r" ^ string_of_int fl.i_seq)
               ?deadline_ms:fl.i_deadline fl.i_req)
        in
        write_line c line;
        c.alive
  in
  let dispatch now fl =
    match fl.i_deadline with
    | Some d when now_ms () > d ->
        Hashtbl.remove inflight_tbl fl.i_seq;
        Atomic.incr stats.shed;
        Hls_telemetry.count "router.deadline_shed";
        let err = Resp.Failed (expired_timeout d) in
        (match fl.i_gather with
        | Some (g, _) when g.g_done -> ()
        | Some (g, _) ->
            g.g_done <- true;
            respond_client g.g_client (Resp.fail ?id:g.g_id err)
        | None -> respond_client fl.i_client (Resp.fail ?id:fl.i_id err))
    | _ ->
        let rec pick exclude =
          match Ring.lookup ~exclude ring fl.i_key with
          | None -> None
          | Some name ->
              let b = Hashtbl.find backend_tbl name in
              if Health.is_routable b.b_health then
                if send_to_backend b fl then Some b
                else begin
                  fail_backend now b "cannot reach backend";
                  pick (name :: exclude)
                end
              else pick (name :: exclude)
        in
        (match pick fl.i_excluded with
        | Some b ->
            fl.i_attempt <- fl.i_attempt + 1;
            fl.i_backend <- Some b.b_name;
            Hashtbl.replace inflight_tbl fl.i_seq fl
        | None ->
            if now -. fl.i_enqueued > cfg.hold_s then begin
              Hashtbl.remove inflight_tbl fl.i_seq;
              give_up fl "no healthy backend"
            end
            else begin
              (* Nothing routable right now; hold and retry shortly.
                 A previously excluded backend may recover, so widen the
                 candidate set again. *)
              fl.i_excluded <- [];
              Queue.add (fl, now +. 0.1) waiting
            end)
  in
  (* ---- scatter-gather explore ------------------------------------ *)
  let routable_count () =
    List.length (List.filter (fun b -> Health.is_routable b.b_health) backends)
  in
  let enqueue now fl = dispatch now fl in
  let admit_explore now conn id deadline req spec
      (params : R.explore_params) =
    let shards = min (routable_count ()) (List.length params.R.latencies) in
    if shards < 2 || params.R.feedback > 0 then
      (* Route whole: nothing to split, or the feedback loop needs the
         global frontier between rounds. *)
      None
    else begin
      (* Round-robin the latency axis so each shard gets a spread, not a
         contiguous band of the cheap or expensive end. *)
      let chunks = Array.make shards [] in
      List.iteri
        (fun i l -> chunks.(i mod shards) <- l :: chunks.(i mod shards))
        params.R.latencies;
      let g =
        { g_client = conn; g_id = id; g_total = shards; g_parts = [];
          g_done = false }
      in
      let key = affinity_key req in
      Some
        (List.init shards (fun k ->
             incr seq;
             let shard_req =
               R.Explore
                 { spec;
                   params = { params with R.latencies = List.rev chunks.(k) } }
             in
             let fl =
               {
                 i_seq = !seq;
                 i_client = conn;
                 i_id = id;
                 i_deadline = deadline;
                 i_req = shard_req;
                 (* per-shard keys spread the scatter over the ring
                    instead of piling every shard on the digest's owner *)
                 i_key = Printf.sprintf "%s#shard%d" key k;
                 i_enqueued = now;
                 i_attempt = 0;
                 i_excluded = [];
                 i_backend = None;
                 i_gather = Some (g, k);
               }
             in
             fl))
    end
  in
  let finish_gather g =
    let parts =
      List.sort (fun (a, _) (b, _) -> compare a b) g.g_parts
      |> List.map snd
    in
    match Merge.merge parts with
    | merged ->
        g.g_done <- true;
        respond_client g.g_client
          { Resp.id = g.g_id; result = Ok (Resp.Explored merged) }
    | exception Invalid_argument m ->
        g.g_done <- true;
        respond_client g.g_client
          (Resp.fail ?id:g.g_id
             (Resp.Failed
                (Hls_util.Failure.Internal (Hls_util.Failure.Remote m))))
  in
  (* ---- backend responses ------------------------------------------ *)
  let settle_response b resp =
    Health.record_success b.b_health;
    match resp.Resp.id with
    | Some id
      when String.length id > 2 && String.sub id 0 2 = "hc" ->
        b.b_probe <- None
    | Some id when String.length id > 1 && id.[0] = 'r' -> (
        match int_of_string_opt (String.sub id 1 (String.length id - 1)) with
        | None -> ()
        | Some n -> (
            match Hashtbl.find_opt inflight_tbl n with
            | None -> ()  (* straggler after failover answered elsewhere *)
            | Some fl -> (
                Hashtbl.remove inflight_tbl n;
                match fl.i_gather with
                | None ->
                    respond_client fl.i_client
                      { resp with Resp.id = fl.i_id }
                | Some (g, k) ->
                    if not g.g_done then (
                      match resp.Resp.result with
                      | Ok (Resp.Explored shard) ->
                          g.g_parts <- (k, shard) :: g.g_parts;
                          if List.length g.g_parts = g.g_total then
                            finish_gather g
                      | Ok _ ->
                          g.g_done <- true;
                          respond_client g.g_client
                            (Resp.fail ?id:g.g_id
                               (Resp.Failed
                                  (Hls_util.Failure.Internal
                                     (Hls_util.Failure.Remote
                                        "explore shard answered with a \
                                         non-explore payload"))))
                      | Error e ->
                          g.g_done <- true;
                          respond_client g.g_client
                            (Resp.fail ?id:g.g_id e)))))
    | _ -> ()
  in
  let handle_backend_line b line =
    if String.trim line <> "" then
      match Resp.of_string line with
      | Ok resp -> settle_response b resp
      | Error _ -> Hls_telemetry.count "router.bad_backend_lines"
  in
  (* ---- client requests -------------------------------------------- *)
  let handle_client_line now conn line =
    if String.trim line = "" then ()
    else
      match R.envelope_of_string line with
      | Error (`Usage m) -> respond_client conn (Resp.fail (Resp.Usage m))
      | Error (`Unsupported_version n) ->
          respond_client conn (Resp.fail (Resp.Unsupported_version n))
      | Ok { R.env_id = id; env_deadline_ms = deadline; env_req } -> (
          match env_req with
          | R.Ping ->
              respond_client conn
                { Resp.id;
                  result = Ok (Resp.Pong { pong_pid = Unix.getpid () }) }
          | R.Stats ->
              (* Answered from the router's own counters — a stats probe
                 must work even when the whole fleet is down. *)
              respond_client conn
                { Resp.id;
                  result =
                    Ok
                      (Resp.Stats
                         {
                           st_source = "router";
                           st_gauges =
                             [
                               ("pid", Unix.getpid ());
                               ("served", Atomic.get stats.served);
                               ("failovers", Atomic.get stats.failovers);
                               ("respawns", Atomic.get stats.respawns);
                               ("shed", Atomic.get stats.shed);
                               ("healthy", Atomic.get stats.healthy);
                               ("inflight", inflight_load ());
                             ];
                         }) }
          | _ -> (
              match deadline with
              | Some d when now_ms () > d ->
                  Hls_telemetry.count "router.deadline_shed";
                  Atomic.incr stats.shed;
                  respond_client conn
                    (Resp.fail ?id (Resp.Failed (expired_timeout d)))
              | _ ->
                  if inflight_load () >= cfg.max_inflight then
                    shed conn ?id
                      (Resp.Overloaded
                         {
                           queued = inflight_load ();
                           capacity = cfg.max_inflight;
                         })
                  else
                    let scatter =
                      match env_req with
                      | R.Explore { spec; params } ->
                          admit_explore now conn id deadline env_req spec
                            params
                      | _ -> None
                    in
                    (match scatter with
                    | Some shards -> List.iter (enqueue now) shards
                    | None ->
                        incr seq;
                        enqueue now
                          {
                            i_seq = !seq;
                            i_client = conn;
                            i_id = id;
                            i_deadline = deadline;
                            i_req = env_req;
                            i_key = affinity_key env_req;
                            i_enqueued = now;
                            i_attempt = 0;
                            i_excluded = [];
                            i_backend = None;
                            i_gather = None;
                          })))
  in
  (* ---- health probes ---------------------------------------------- *)
  let backend_busy b =
    Hashtbl.fold
      (fun _ fl acc -> acc || fl.i_backend = Some b.b_name)
      inflight_tbl false
  in
  let probe_sweep now =
    if now -. !last_probe >= cfg.probe_interval_s then begin
      last_probe := now;
      List.iter
        (fun b ->
          (* Time out a stuck probe — but liveness is decoupled from
             request latency: a backend with our requests in flight has
             a single-threaded coordinator that answers pings between
             batches, so a late probe while it owes us answers only
             proves it is executing, not dead.  A crash still surfaces
             immediately as EOF/ECONNRESET on the connection.  Only an
             *idle* backend that cannot answer a ping within the probe
             timeout counts as failed. *)
          (match b.b_probe with
          | Some (_, sent) when now -. sent > cfg.probe_timeout_s ->
              if backend_busy b then b.b_probe <- None
              else fail_backend now b "probe timeout"
          | _ -> ());
          let want_probe =
            b.b_probe = None
            && (Health.is_routable b.b_health
               || Health.trial_due ~now b.b_health)
          in
          if want_probe then
            match ensure_conn b with
            | None ->
                (* a half-open trial that cannot even connect fails *)
                if Health.state b.b_health = Health.Half_open then
                  Health.record_failure ~now b.b_health
            | Some c ->
                incr probe_seq;
                let id = "hc" ^ string_of_int !probe_seq in
                write_line c
                  (Hls_dse.Dse_json.to_string (R.to_json ~id R.Ping));
                if c.alive then b.b_probe <- Some (id, now)
                else fail_backend now b "probe write failed")
        backends;
      Atomic.set stats.healthy (routable_count ());
      Hls_telemetry.gauge "router.healthy_backends" (float (routable_count ()));
      Hls_telemetry.gauge "router.inflight" (float (inflight_load ()));
      List.iter
        (fun b ->
          Hls_telemetry.gauge
            ("router.backend." ^ b.b_name ^ ".healthy")
            (if Health.is_routable b.b_health then 1. else 0.))
        backends
    end
  in
  (* ---- child reaping / respawn ------------------------------------ *)
  let reap_children now =
    match cfg.spawn with
    | None -> ()
    | Some sp ->
        List.iter
          (fun b ->
            match (b.b_pid, b.b_spawn_index) with
            | Some pid, Some i -> (
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> ()
                | _ ->
                    b.b_pid <- None;
                    fail_backend now b
                      (Printf.sprintf "backend process %d died" pid);
                    if not (Atomic.get stop) then begin
                      let pid' = spawn_child sp i in
                      b.b_pid <- Some pid';
                      Atomic.incr stats.respawns;
                      Hls_telemetry.count "router.respawns";
                      log
                        (Printf.sprintf
                           "respawned backend %d (pid %d) on %s" i pid'
                           b.b_name)
                    end
                | exception Unix.Unix_error _ -> b.b_pid <- None)
            | _ -> ())
          backends
  in
  (* ---- waiting queue ---------------------------------------------- *)
  let run_waiting now =
    let n = Queue.length waiting in
    for _ = 1 to n do
      let fl, not_before = Queue.pop waiting in
      if now >= not_before then dispatch now fl
      else Queue.add (fl, not_before) waiting
    done
  in
  (* ---- accept ----------------------------------------------------- *)
  let accept_one listen_fd =
    let rec go () =
      match Unix.accept listen_fd with
      | fd, _ ->
          if Faults.on_accept () then begin
            Hls_telemetry.count "router.fault_dropped_conns";
            (try Unix.close fd with Unix.Unix_error _ -> ())
          end
          else begin
            Hls_telemetry.count "router.connections";
            (match cfg.io_timeout_s with
            | Some t -> (
                (* Bounds blocking response writes: a client that stops
                   reading hits ETIMEDOUT in write_line and is dropped
                   instead of wedging the single-threaded coordinator
                   (and every backend behind it). *)
                try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t
                with Unix.Unix_error _ | Invalid_argument _ -> ())
            | None -> ());
            clients := { fd; buf = Buffer.create 256; alive = true } :: !clients
          end;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    go ()
  in
  let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> () in
  (* ---- main loop --------------------------------------------------- *)
  let drain () =
    (* Stop taking work; wait for in-flight answers within the grace
       window; answer whatever is left Unavailable. *)
    let deadline = Unix.gettimeofday () +. cfg.grace_s in
    Queue.iter
      (fun (fl, _) -> give_up fl "router draining")
      waiting;
    Queue.clear waiting;
    let rec wait () =
      if Hashtbl.length inflight_tbl > 0 && Unix.gettimeofday () < deadline
      then begin
        let bfds =
          List.filter_map
            (fun b ->
              match b.b_conn with
              | Some c when c.alive -> Some c.fd
              | _ -> None)
            backends
        in
        (match Unix.select bfds [] [] 0.1 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
            List.iter
              (fun b ->
                match b.b_conn with
                | Some c when c.alive && List.memq c.fd ready ->
                    read_into c;
                    List.iter (handle_backend_line b) (split_lines c);
                    if not c.alive then
                      fail_backend (Unix.gettimeofday ()) b
                        "backend connection lost"
                | _ -> ())
              backends);
        run_waiting (Unix.gettimeofday ());
        wait ()
      end
    in
    wait ();
    let leftovers = Hashtbl.fold (fun _ fl acc -> fl :: acc) inflight_tbl [] in
    List.iter
      (fun fl -> give_up fl "draining: shutdown grace expired")
      leftovers;
    (* bring the children down with us *)
    match cfg.spawn with
    | None -> ()
    | Some _ ->
        List.iter
          (fun b ->
            match b.b_pid with
            | Some pid -> (
                try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
            | None -> ())
          backends;
        let kill_deadline = Unix.gettimeofday () +. 5. in
        List.iter
          (fun b ->
            match b.b_pid with
            | None -> ()
            | Some pid ->
                let rec reap () =
                  match Unix.waitpid [ Unix.WNOHANG ] pid with
                  | 0, _ ->
                      if Unix.gettimeofday () < kill_deadline then begin
                        Unix.sleepf 0.05;
                        reap ()
                      end
                      else begin
                        (try Unix.kill pid Sys.sigkill
                         with Unix.Unix_error _ -> ());
                        ignore (Unix.waitpid [] pid)
                      end
                  | _ -> ()
                  | exception Unix.Unix_error _ -> ()
                in
                reap ())
          backends
  in
  let running = ref true in
  while !running do
    if Atomic.get stop then begin
      drain ();
      running := false
    end
    else begin
      let now = Unix.gettimeofday () in
      reap_children now;
      probe_sweep now;
      run_waiting now;
      let bconns =
        List.filter_map
          (fun b ->
            match b.b_conn with
            | Some c when c.alive -> Some (b, c)
            | _ -> None)
          backends
      in
      let fds =
        listeners
        @ List.filter_map (fun c -> if c.alive then Some c.fd else None) !clients
        @ List.map (fun (_, c) -> c.fd) bconns
      in
      match Unix.select fds [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter (fun l -> if List.memq l ready then accept_one l) listeners;
          List.iter
            (fun c ->
              if c.alive && List.memq c.fd ready then begin
                read_into c;
                if Buffer.length c.buf > cfg.max_line then begin
                  respond_client c
                    (Resp.fail (Resp.Usage "request line too long"));
                  c.alive <- false
                end
                else
                  List.iter
                    (handle_client_line (Unix.gettimeofday ()) c)
                    (split_lines c)
              end)
            !clients;
          List.iter
            (fun (b, c) ->
              if c.alive && List.memq c.fd ready then begin
                read_into c;
                List.iter (handle_backend_line b) (split_lines c);
                if not c.alive then
                  fail_backend (Unix.gettimeofday ()) b
                    "backend connection lost"
              end)
            bconns;
          (* forget dead client connections with nothing in flight *)
          let dead, live =
            List.partition
              (fun c ->
                (not c.alive)
                && not
                     (Hashtbl.fold
                        (fun _ fl acc -> acc || fl.i_client == c)
                        inflight_tbl false))
              !clients
          in
          List.iter close_conn dead;
          clients := live
    end
  done;
  List.iter close_conn !clients;
  List.iter (fun b -> close_bconn b) backends;
  List.iter (fun l -> try Unix.close l with Unix.Unix_error _ -> ()) listeners;
  (try Unix.close devnull with Unix.Unix_error _ -> ());
  match cfg.socket with
  | Some p -> ( try Sys.remove p with Sys_error _ -> ())
  | None -> ()
