(** The sharded serving front end: accepts the same NDJSON protocol as
    the daemon, consistent-hashes each request by graph digest onto a
    backend ({!Ring}), health-checks the fleet ({!Health}), fails
    in-flight work over to replicas under a retry budget, and
    scatter-gathers multi-latency explores across the routable backends,
    merging shard frontiers ({!Merge}).

    Responses are re-encoded under the client's original id with the
    exact wire codec, so a routed answer is byte-identical to a one-shot
    one.  Shedding is typed end to end: [Overloaded] at the in-flight
    cap, the request's own [deadline_ms], and [Unavailable] (exit 8)
    when no healthy backend exists or a shutdown drain runs out of
    grace. *)

(** Router-owned child backends: [command i] is the argv that serves
    [socket_of i]; dead children are reaped and respawned. *)
type spawn = {
  count : int;
  command : int -> string array;
  socket_of : int -> string;
}

type config = {
  socket : string option;  (** Unix socket endpoint *)
  listen : (string * int) option;  (** TCP endpoint *)
  backends : string list;  (** externally managed backend addresses *)
  spawn : spawn option;
  max_inflight : int;  (** admission cap across queued + in-flight *)
  retry : Hls_pool.Retry_policy.t;  (** failover budget per request *)
  probe_interval_s : float;
  probe_timeout_s : float;
  eject_after : int;  (** consecutive failures before ejection *)
  cooldown_s : float;  (** ejection time before a half-open trial *)
  hold_s : float;  (** how long an unroutable request waits *)
  grace_s : float;  (** shutdown drain bound *)
  io_timeout_s : float option;
      (** SO_SNDTIMEO on accepted client connections: a client that
          stops reading is dropped instead of wedging the coordinator;
          [None] = wait forever *)
  max_line : int;
}

(** No endpoints, no backends (set at least one of each), 256 in-flight,
    3 failover attempts at 50 ms backoff, 0.5 s probes with a 2 s
    timeout, eject after 3, 1 s cooldown, 5 s hold, 5 s grace, 30 s
    client io timeout.

    A probe timeout only fails a backend that is {e idle} from the
    router's point of view: while the backend owes the router in-flight
    answers, its single-threaded coordinator may legitimately hold a
    ping behind an executing batch, so a late probe there proves
    business, not death (a crash still surfaces immediately as EOF on
    the connection). *)
val default_config : unit -> config

(** Live counters, safe to read from another domain while the router
    runs. *)
type stats = {
  served : int Atomic.t;  (** responses delivered to clients *)
  failovers : int Atomic.t;  (** in-flight requests re-routed *)
  respawns : int Atomic.t;  (** dead children restarted *)
  shed : int Atomic.t;  (** Overloaded / Unavailable / deadline answers *)
  healthy : int Atomic.t;  (** routable backends, updated each sweep *)
}

val make_stats : unit -> stats

(** The request's routing key: the elaborated graph's digest when the
    spec elaborates router-side, a path/name-derived key otherwise.
    Exposed for tests. *)
val affinity_key : Hls_api.Request.t -> string

(** Run the router until [stop] flips (or SIGTERM/SIGINT when
    [handle_signals]).  Blocks; raises [Invalid_argument] when the
    config has no endpoint or no backends.  [log] receives one line per
    fleet event (spawn, ejection, respawn). *)
val serve :
  ?stop:bool Atomic.t ->
  ?handle_signals:bool ->
  ?stats:stats ->
  ?log:(string -> unit) ->
  config ->
  unit
