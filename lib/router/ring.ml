(* Consistent-hash ring over backend names.

   Each backend contributes [vnodes] points on a 63-bit circle; a key
   routes to the first point clockwise of its own hash.  Virtual nodes
   keep the load split even with a handful of backends, and consistency
   means adding or removing one backend only moves the keys that hashed
   into its arcs — the property that keeps the memoized prepare prefix
   and the WAL cache hot on the surviving shards. *)

type t = { points : (int * string) array; backends : string list }

(* First 8 digest bytes, folded to a non-negative int.  Digest.string is
   MD5: plenty uniform for load splitting and stable across runs, which
   hashing with [Hashtbl.hash] would not guarantee across versions. *)
let hash_key s =
  let d = Digest.string s in
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

let make ?(vnodes = 64) backends =
  let backends = List.sort_uniq compare backends in
  let points =
    List.concat_map
      (fun b ->
        List.init vnodes (fun i ->
            (hash_key (Printf.sprintf "%s#%d" b i), b)))
      backends
    |> Array.of_list
  in
  Array.sort compare points;
  { points; backends }

let backends t = t.backends

(* First point with hash >= h, or 0 wrapping around. *)
let successor t h =
  let n = Array.length t.points in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then bs (mid + 1) hi else bs lo mid
  in
  let i = bs 0 n in
  if i = n then 0 else i

let lookup ?(exclude = []) t key =
  let n = Array.length t.points in
  if n = 0 then None
  else
    let start = successor t (hash_key key) in
    let rec scan steps =
      if steps >= n then None
      else
        let _, b = t.points.((start + steps) mod n) in
        if List.mem b exclude then scan (steps + 1) else Some b
    in
    scan 0
