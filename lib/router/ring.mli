(** Consistent-hash ring over backend names.

    Each backend contributes [vnodes] virtual points on a 63-bit hash
    circle (MD5-based, stable across runs and versions); a key routes to
    the first point clockwise of its own hash.  Adding or removing a
    backend only moves the keys whose arcs it owned — roughly 1/N of
    them — so digest-affine caches on the surviving shards stay hot. *)

type t

(** [make ?vnodes backends] (default 64 virtual nodes per backend).
    Duplicate names collapse; an empty list makes an empty ring. *)
val make : ?vnodes:int -> string list -> t

(** The distinct backend names, sorted. *)
val backends : t -> string list

(** The backend owning [key]'s arc, skipping any in [exclude] by
    continuing clockwise (failover order is deterministic).  [None] when
    the ring is empty or everything is excluded. *)
val lookup : ?exclude:string list -> t -> string -> string option

(** The stable 63-bit key hash (exposed for tests). *)
val hash_key : string -> int
