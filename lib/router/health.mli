(** Per-backend health: consecutive-failure ejection with half-open
    reintroduction.

    {v
      Healthy   --[eject_after consecutive failures]--> Ejected
      Ejected   --[cooldown elapsed, trial granted]---> Half_open
      Half_open --[success]--> Healthy    --[failure]--> Ejected
    v}

    Time is passed in explicitly so tests drive the machine without
    sleeping. *)

type state = Healthy | Ejected of float  (** ejection time *) | Half_open

type t

(** Default: eject after 3 consecutive failures, 2 s cooldown. *)
val make : ?eject_after:int -> ?cooldown_s:float -> unit -> t

val state : t -> state

(** Only [Healthy] backends take user traffic; a [Half_open] one is
    proving itself on the probe that owns its trial. *)
val is_routable : t -> bool

val record_success : t -> unit
val record_failure : now:float -> t -> unit

(** Grants the single half-open trial once the cooldown has elapsed;
    the caller that receives [true] owns the trial and must settle it
    with {!record_success} or {!record_failure}. *)
val trial_due : now:float -> t -> bool
