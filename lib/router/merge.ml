(* Merging scatter-gathered explore shards back into one sweep result.

   The router splits an explore's latency axis across backends; each
   shard comes back as a full Hls_dse.Explore.t over its slice.  Merging
   is mostly set union with the sweep's own invariants re-established:
   points re-sorted on the full job key and deduped (a failover can make
   two shards compute the same job), failures dropped for jobs that
   succeeded elsewhere, and the Pareto frontier recomputed over the
   union — a frontier of shard frontiers would be wrong, since a point
   dominating in its slice can be dominated globally. *)

module E = Hls_dse.Explore
module Space = Hls_dse.Space
module Pareto = Hls_dse.Pareto

let dedup_sorted ~key = function
  | [] -> []
  | x :: rest ->
      let _, acc =
        List.fold_left
          (fun (prev, acc) y ->
            if key y = prev then (prev, acc) else (key y, y :: acc))
          (key x, [ x ])
          rest
      in
      List.rev acc

(* Merge per-phase (name, calls, seconds) lists, preserving the order
   names first appear. *)
let merge_phases shards =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (name, calls, secs) ->
         match Hashtbl.find_opt tbl name with
         | None ->
             order := name :: !order;
             Hashtbl.add tbl name (calls, secs)
         | Some (c, s) -> Hashtbl.replace tbl name (c + calls, s +. secs)))
    shards;
  List.rev_map
    (fun name ->
      let c, s = Hashtbl.find tbl name in
      (name, c, s))
    !order

let merge_assoc ~combine shards =
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (name, v) ->
         match Hashtbl.find_opt tbl name with
         | None -> Hashtbl.add tbl name v
         | Some prev -> Hashtbl.replace tbl name (combine prev v)))
    shards;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort compare

let merge shards =
  match shards with
  | [] -> invalid_arg "Merge.merge: no shards"
  | first :: rest ->
      List.iter
        (fun s ->
          if s.E.digest <> first.E.digest then
            invalid_arg
              (Printf.sprintf "Merge.merge: shard digests differ (%s vs %s)"
                 first.E.digest s.E.digest))
        rest;
      let points =
        List.concat_map (fun s -> s.E.points) shards
        |> List.sort (fun (a : E.point) b -> Space.compare_job a.E.job b.E.job)
        |> dedup_sorted ~key:(fun (p : E.point) -> Space.job_key p.E.job)
      in
      let succeeded = Hashtbl.create 64 in
      List.iter
        (fun (p : E.point) ->
          Hashtbl.replace succeeded (Space.job_key p.E.job) ())
        points;
      let failures =
        List.concat_map (fun s -> s.E.failures) shards
        |> List.filter (fun (f : E.failure) ->
               not (Hashtbl.mem succeeded (Space.job_key f.E.f_job)))
        |> List.sort (fun (a : E.failure) b ->
               Space.compare_job a.E.f_job b.E.f_job)
        |> dedup_sorted ~key:(fun (f : E.failure) -> Space.job_key f.E.f_job)
      in
      let transforms =
        List.concat_map (fun s -> s.E.transforms) shards
        |> List.sort (fun (a : E.transform_summary) b ->
               compare a.E.t_recipe b.E.t_recipe)
        |> dedup_sorted ~key:(fun (x : E.transform_summary) -> x.E.t_recipe)
      in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 shards in
      let fmax f = List.fold_left (fun acc s -> max acc (f s)) 0. shards in
      let imax f = List.fold_left (fun acc s -> max acc (f s)) 0 shards in
      {
        E.graph_name = first.E.graph_name;
        digest = first.E.digest;
        points;
        failures;
        frontier = Pareto.frontier ~objectives:E.objectives points;
        transforms;
        rounds = imax (fun s -> s.E.rounds);
        (* shards ran in parallel: merged wall is the slowest shard *)
        wall_s = fmax (fun s -> s.E.wall_s);
        cache_hits = sum (fun s -> s.E.cache_hits);
        cache_misses = sum (fun s -> s.E.cache_misses);
        recovered = sum (fun s -> s.E.recovered);
        phases = merge_phases (List.map (fun s -> s.E.phases) shards);
        counters =
          merge_assoc ~combine:( + ) (List.map (fun s -> s.E.counters) shards);
        gauges =
          merge_assoc
            ~combine:(fun (l1, m1) (l2, m2) -> (max l1 l2, max m1 m2))
            (List.map (fun s -> s.E.gauges) shards);
      }
