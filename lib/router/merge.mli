(** Merge scatter-gathered explore shards into one sweep result.

    Points are unioned, re-sorted on the full job key and deduped (a
    failover can compute the same job on two shards); failures are kept
    only for jobs no shard completed; the Pareto frontier is recomputed
    over the union (a frontier of shard frontiers would keep locally
    optimal, globally dominated points).  Cache counters sum; wall time
    is the slowest shard (they ran in parallel); telemetry phase tables,
    counters and gauges merge by name.

    Raises [Invalid_argument] on an empty list or on shards whose graph
    digests differ — that would be two different designs, not shards of
    one sweep. *)
val merge : Hls_dse.Explore.t list -> Hls_dse.Explore.t
