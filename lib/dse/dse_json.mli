(** Minimal JSON values for the sweep cache and the [--json] output.

    Floats print with ["%.17g"], which round-trips every finite double
    exactly — required for the cache to reproduce metrics bit-for-bit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
val of_string : string -> (t, string) result

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
