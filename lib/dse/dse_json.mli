(** Minimal JSON values for the sweep cache and the [--json] output.

    Floats print with ["%.17g"], which round-trips every finite double
    exactly — required for the cache to reproduce metrics bit-for-bit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
val of_string : string -> (t, string) result

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

(** The one wire encoding of {!Hls_util.Failure.t}, shared by the sweep
    report and the request/response api: an object with a ["class"]
    discriminator plus the class payload (["message"], or ["seconds"]
    for timeouts).  [failure_of_json] inverts it exactly —
    [of_failure (decode j) = j] for any [j] it accepts ([Internal]
    faults decode to {!Hls_util.Failure.Remote}, whose printer
    reproduces the original text). *)
val of_failure : Hls_util.Failure.t -> t

val failure_of_json : t -> (Hls_util.Failure.t, string) result
