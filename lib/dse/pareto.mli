(** 3-objective Pareto frontier (cycle ns, area gates, latency — all
    minimized). *)

type objectives = { cycle_ns : float; area_gates : int; latency : int }

(** [dominates a b]: [a] no worse everywhere and strictly better
    somewhere. *)
val dominates : objectives -> objectives -> bool

(** Non-dominated points, in input order (deterministic); points with
    identical objectives all survive. *)
val frontier : objectives:('a -> objectives) -> 'a list -> 'a list

val pp_objectives : Format.formatter -> objectives -> unit
