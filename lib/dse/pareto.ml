(* The 3-objective Pareto frontier of a sweep: cycle time (ns), area
   (gates) and latency (cycles), all minimized.

   A point dominates another when it is no worse on every objective and
   strictly better on at least one.  The frontier keeps every
   non-dominated point in input order, so results are deterministic;
   points with identical objectives do not dominate each other and both
   survive (they are genuinely interchangeable designs). *)

type objectives = { cycle_ns : float; area_gates : int; latency : int }

let dominates a b =
  a.cycle_ns <= b.cycle_ns
  && a.area_gates <= b.area_gates
  && a.latency <= b.latency
  && (a.cycle_ns < b.cycle_ns
     || a.area_gates < b.area_gates
     || a.latency < b.latency)

let frontier ~objectives points =
  (* O(n^2); sweeps are at most a few thousand points. *)
  let objs = List.map (fun p -> (p, objectives p)) points in
  List.filter_map
    (fun (p, o) ->
      if List.exists (fun (_, o') -> dominates o' o) objs then None
      else Some p)
    objs

let pp_objectives ppf o =
  Format.fprintf ppf "cycle %.2f ns, %d gates, latency %d" o.cycle_ns
    o.area_gates o.latency
