(* Content-hash memoization for design-space sweeps.

   A sweep point is keyed by (graph digest, job parameter string): the
   digest is an MD5 of the graph's full printed form (name, ports, nodes,
   widths — everything that feeds the flow), so any edit to the
   specification invalidates its entries while re-runs on the same spec
   hit.  Values are the scalar metrics of a `Pipeline.report`; the heavy
   structures (datapath, schedule) are cheap to drop because a hit means
   we do not need them.

   The store is a single JSON file, loaded whole and rewritten whole on
   `flush` — sweeps are thousands of entries at most.  Floats round-trip
   exactly (see Dse_json), so a cache hit reproduces the original metrics
   byte-for-byte.

   Concurrency: the cache is coordinator-only.  `Explore` looks entries up
   before dispatching jobs to the pool and inserts results after
   collecting them, so worker domains never touch it and no locking is
   needed. *)

type metrics = {
  m_flow : string;
  m_latency : int;
  m_cycle_delta : int;
  m_cycle_ns : float;
  m_execution_ns : float;
  m_op_count : int;
  m_fragment_count : int;
  m_fu_gates : int;
  m_register_gates : int;
  m_mux_gates : int;
  m_controller_gates : int;
  m_total_gates : int;
}

let metrics_of_report (r : Hls_core.Pipeline.report) =
  let a = r.Hls_core.Pipeline.area in
  {
    m_flow = r.Hls_core.Pipeline.flow;
    m_latency = r.Hls_core.Pipeline.latency;
    m_cycle_delta = r.Hls_core.Pipeline.cycle_delta;
    m_cycle_ns = r.Hls_core.Pipeline.cycle_ns;
    m_execution_ns = r.Hls_core.Pipeline.execution_ns;
    m_op_count = r.Hls_core.Pipeline.op_count;
    m_fragment_count = r.Hls_core.Pipeline.fragment_count;
    m_fu_gates = a.Hls_alloc.Datapath.fu_gates;
    m_register_gates = a.Hls_alloc.Datapath.register_gates;
    m_mux_gates = a.Hls_alloc.Datapath.mux_gates;
    m_controller_gates = a.Hls_alloc.Datapath.controller_gates;
    m_total_gates = a.Hls_alloc.Datapath.total_gates;
  }

let metrics_to_json m =
  Dse_json.Obj
    [
      ("flow", Dse_json.String m.m_flow);
      ("latency", Dse_json.Int m.m_latency);
      ("cycle_delta", Dse_json.Int m.m_cycle_delta);
      ("cycle_ns", Dse_json.Float m.m_cycle_ns);
      ("execution_ns", Dse_json.Float m.m_execution_ns);
      ("op_count", Dse_json.Int m.m_op_count);
      ("fragment_count", Dse_json.Int m.m_fragment_count);
      ("fu_gates", Dse_json.Int m.m_fu_gates);
      ("register_gates", Dse_json.Int m.m_register_gates);
      ("mux_gates", Dse_json.Int m.m_mux_gates);
      ("controller_gates", Dse_json.Int m.m_controller_gates);
      ("total_gates", Dse_json.Int m.m_total_gates);
    ]

let metrics_of_json j =
  let open Dse_json in
  let ( let* ) = Option.bind in
  let* m_flow = Option.bind (member "flow" j) to_str in
  let* m_latency = Option.bind (member "latency" j) to_int in
  let* m_cycle_delta = Option.bind (member "cycle_delta" j) to_int in
  let* m_cycle_ns = Option.bind (member "cycle_ns" j) to_float in
  let* m_execution_ns = Option.bind (member "execution_ns" j) to_float in
  let* m_op_count = Option.bind (member "op_count" j) to_int in
  let* m_fragment_count = Option.bind (member "fragment_count" j) to_int in
  let* m_fu_gates = Option.bind (member "fu_gates" j) to_int in
  let* m_register_gates = Option.bind (member "register_gates" j) to_int in
  let* m_mux_gates = Option.bind (member "mux_gates" j) to_int in
  let* m_controller_gates = Option.bind (member "controller_gates" j) to_int in
  let* m_total_gates = Option.bind (member "total_gates" j) to_int in
  Some
    {
      m_flow; m_latency; m_cycle_delta; m_cycle_ns; m_execution_ns;
      m_op_count; m_fragment_count; m_fu_gates; m_register_gates;
      m_mux_gates; m_controller_gates; m_total_gates;
    }

(* ------------------------------------------------------------------ *)

type t = {
  path : string option;
  entries : (string, metrics) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable dirty : bool;
}

let graph_digest g =
  Digest.to_hex
    (Digest.string
       (Hls_dfg.Graph.name g ^ "\n" ^ Format.asprintf "%a" Hls_dfg.Graph.pp g))

let key ~graph_digest ~job_key =
  Digest.to_hex (Digest.string (graph_digest ^ "|" ^ job_key))

let load_file path entries =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    Dse_json.of_string src
  with
  | Ok (Dse_json.Obj fields) ->
      List.iter
        (fun (k, v) ->
          match metrics_of_json v with
          | Some m -> Hashtbl.replace entries k m
          | None -> () (* skip malformed entries; they will recompute *))
        fields;
      Ok ()
  | Ok _ -> Error (path ^ ": cache root is not an object")
  | Error m -> Error (path ^ ": " ^ m)
  | exception Sys_error m -> Error m

let create ?path () =
  let entries = Hashtbl.create 64 in
  (match path with
  | Some p when Sys.file_exists p ->
      (* A corrupt store must not kill a sweep: start empty instead. *)
      ignore (load_file p entries : (unit, string) result)
  | _ -> ());
  { path; entries; hits = 0; misses = 0; dirty = false }

let find t k =
  match Hashtbl.find_opt t.entries k with
  | Some m -> t.hits <- t.hits + 1; Some m
  | None -> t.misses <- t.misses + 1; None

let mem t k = Hashtbl.mem t.entries k

let add t k m =
  Hashtbl.replace t.entries k m;
  t.dirty <- true

let length t = Hashtbl.length t.entries
let hits t = t.hits
let misses t = t.misses

let to_json t =
  let fields =
    Hashtbl.fold (fun k m acc -> (k, metrics_to_json m) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Dse_json.Obj fields

let flush t =
  match t.path with
  | None -> ()
  | Some path ->
      if t.dirty then begin
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        output_string oc (Dse_json.to_string ~indent:true (to_json t));
        output_char oc '\n';
        close_out oc;
        Sys.rename tmp path;
        t.dirty <- false
      end
