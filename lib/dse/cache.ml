(* Content-hash memoization for design-space sweeps.

   A sweep point is keyed by (graph digest, job parameter string): the
   digest is an MD5 of the graph's full printed form (name, ports, nodes,
   widths — everything that feeds the flow), so any edit to the
   specification invalidates its entries while re-runs on the same spec
   hit.  Values are the scalar metrics of a `Pipeline.report`; the heavy
   structures (datapath, schedule) are cheap to drop because a hit means
   we do not need them.

   The store is a single JSON file, loaded whole and rewritten whole on
   `flush` — sweeps are thousands of entries at most.  Floats round-trip
   exactly (see Dse_json), so a cache hit reproduces the original metrics
   byte-for-byte.

   Crash-safety is layered on top of the JSON store:

   - an append-only journal `<path>.wal` (one `{"k": …, "m": {…}}` object
     per line, fsynced per batch) receives new entries as the sweep runs
     (`journal`, called by Explore after every round).  `create` replays
     it after loading the store, so a sweep killed mid-run resumes from
     everything it had already computed; `flush` compacts it into the
     rewritten store and deletes it.  A truncated final line — the
     expected shape of a crash mid-append — is skipped; replay is
     idempotent because journaled entries also land in the store.
   - `flush` writes to `<path>.tmp` under `Fun.protect` (no stale .tmp on
     an exception), fsyncs before the atomic rename, and removes any
     pre-existing .tmp first.
   - an advisory lock `<path>.lock` (O_EXCL pid file with staleness
     check) stops two sweeps from interleaving writes to one store.

   Concurrency within a process: the cache is coordinator-only.
   `Explore` looks entries up before dispatching jobs to the pool and
   inserts results after collecting them, so worker domains never touch
   it and no in-process locking is needed. *)

type metrics = {
  m_flow : string;
  m_latency : int;
  m_cycle_delta : int;
  m_cycle_ns : float;
  m_execution_ns : float;
  m_op_count : int;
  m_fragment_count : int;
  m_fu_gates : int;
  m_register_gates : int;
  m_mux_gates : int;
  m_controller_gates : int;
  m_total_gates : int;
}

let metrics_of_report (r : Hls_core.Pipeline.report) =
  let a = r.Hls_core.Pipeline.area in
  {
    m_flow = r.Hls_core.Pipeline.flow;
    m_latency = r.Hls_core.Pipeline.latency;
    m_cycle_delta = r.Hls_core.Pipeline.cycle_delta;
    m_cycle_ns = r.Hls_core.Pipeline.cycle_ns;
    m_execution_ns = r.Hls_core.Pipeline.execution_ns;
    m_op_count = r.Hls_core.Pipeline.op_count;
    m_fragment_count = r.Hls_core.Pipeline.fragment_count;
    m_fu_gates = a.Hls_alloc.Datapath.fu_gates;
    m_register_gates = a.Hls_alloc.Datapath.register_gates;
    m_mux_gates = a.Hls_alloc.Datapath.mux_gates;
    m_controller_gates = a.Hls_alloc.Datapath.controller_gates;
    m_total_gates = a.Hls_alloc.Datapath.total_gates;
  }

let metrics_to_json m =
  Dse_json.Obj
    [
      ("flow", Dse_json.String m.m_flow);
      ("latency", Dse_json.Int m.m_latency);
      ("cycle_delta", Dse_json.Int m.m_cycle_delta);
      ("cycle_ns", Dse_json.Float m.m_cycle_ns);
      ("execution_ns", Dse_json.Float m.m_execution_ns);
      ("op_count", Dse_json.Int m.m_op_count);
      ("fragment_count", Dse_json.Int m.m_fragment_count);
      ("fu_gates", Dse_json.Int m.m_fu_gates);
      ("register_gates", Dse_json.Int m.m_register_gates);
      ("mux_gates", Dse_json.Int m.m_mux_gates);
      ("controller_gates", Dse_json.Int m.m_controller_gates);
      ("total_gates", Dse_json.Int m.m_total_gates);
    ]

let metrics_of_json j =
  let open Dse_json in
  let ( let* ) = Option.bind in
  let* m_flow = Option.bind (member "flow" j) to_str in
  let* m_latency = Option.bind (member "latency" j) to_int in
  let* m_cycle_delta = Option.bind (member "cycle_delta" j) to_int in
  let* m_cycle_ns = Option.bind (member "cycle_ns" j) to_float in
  let* m_execution_ns = Option.bind (member "execution_ns" j) to_float in
  let* m_op_count = Option.bind (member "op_count" j) to_int in
  let* m_fragment_count = Option.bind (member "fragment_count" j) to_int in
  let* m_fu_gates = Option.bind (member "fu_gates" j) to_int in
  let* m_register_gates = Option.bind (member "register_gates" j) to_int in
  let* m_mux_gates = Option.bind (member "mux_gates" j) to_int in
  let* m_controller_gates = Option.bind (member "controller_gates" j) to_int in
  let* m_total_gates = Option.bind (member "total_gates" j) to_int in
  Some
    {
      m_flow; m_latency; m_cycle_delta; m_cycle_ns; m_execution_ns;
      m_op_count; m_fragment_count; m_fu_gates; m_register_gates;
      m_mux_gates; m_controller_gates; m_total_gates;
    }

(* ------------------------------------------------------------------ *)

exception Locked of string

type t = {
  path : string option;
  lock_path : string option;  (** held advisory lock, released by {!close} *)
  entries : (string, metrics) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable dirty : bool;
  mutable pending : (string * metrics) list;
      (** entries added since the last {!journal}, newest first *)
  mutable warnings : string list;  (** load-time damage, newest first *)
  mutable recovered : int;  (** entries replayed from the journal *)
  mutable released : bool;
}

let graph_digest g =
  Digest.to_hex
    (Digest.string
       (Hls_dfg.Graph.name g ^ "\n" ^ Format.asprintf "%a" Hls_dfg.Graph.pp g))

let key ~graph_digest ~job_key =
  Digest.to_hex (Digest.string (graph_digest ^ "|" ^ job_key))

let wal_path p = p ^ ".wal"
let tmp_path p = p ^ ".tmp"

(* ---- advisory lock: O_EXCL pid file with staleness check ---------- *)

let read_lock_pid lp =
  match open_in lp with
  | ic ->
      let pid = try int_of_string_opt (input_line ic) with End_of_file -> None in
      close_in ic;
      pid
  | exception Sys_error _ -> None

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception _ -> true (* EPERM etc.: someone owns it, treat as alive *)

let acquire_lock path =
  let lp = path ^ ".lock" in
  let try_create () =
    match Unix.openfile lp [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 with
    | fd ->
        let pid = string_of_int (Unix.getpid ()) ^ "\n" in
        ignore (Unix.write_substring fd pid 0 (String.length pid) : int);
        Unix.close fd;
        true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  let rec go tries =
    if try_create () then lp
    else
      let stale =
        match read_lock_pid lp with
        | Some pid -> not (pid_alive pid)
        | None -> true (* unreadable or empty: a crash mid-write; reclaim *)
      in
      if stale && tries > 0 then begin
        (try Sys.remove lp with Sys_error _ -> ());
        go (tries - 1)
      end
      else raise (Locked lp)
  in
  go 3

(* ---- store + journal loading ------------------------------------- *)

let warn t msg = t.warnings <- msg :: t.warnings

let load_store t path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    (* An empty file is a fresh store (Filename.temp_file, touch), not
       damage. *)
    if String.trim src = "" then Ok (Dse_json.Obj [])
    else Dse_json.of_string src
  with
  | Ok (Dse_json.Obj fields) ->
      let skipped = ref 0 in
      List.iter
        (fun (k, v) ->
          match metrics_of_json v with
          | Some m -> Hashtbl.replace t.entries k m
          | None -> incr skipped (* malformed entry: it will recompute *))
        fields;
      if !skipped > 0 then
        warn t
          (Printf.sprintf "%s: skipped %d malformed entr%s" path !skipped
             (if !skipped = 1 then "y" else "ies"))
  | Ok _ -> warn t (path ^ ": cache root is not an object; starting empty")
  | Error m -> warn t (path ^ ": " ^ m ^ "; starting empty")
  | exception Sys_error m -> warn t (m ^ "; starting empty")

let wal_entry_of_line line =
  match Dse_json.of_string line with
  | Ok j -> (
      match
        ( Option.bind (Dse_json.member "k" j) Dse_json.to_str,
          Option.bind (Dse_json.member "m" j) metrics_of_json )
      with
      | Some k, Some m -> Some (k, m)
      | _ -> None)
  | Error _ -> None

let replay_wal t path =
  let wp = wal_path path in
  if Sys.file_exists wp then begin
    match open_in_bin wp with
    | exception Sys_error m -> warn t (m ^ "; journal ignored")
    | ic ->
        let bad = ref 0 and lines = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr lines;
             if String.trim line <> "" then
               match wal_entry_of_line line with
               | Some (k, m) ->
                   if not (Hashtbl.mem t.entries k) then begin
                     Hashtbl.replace t.entries k m;
                     t.recovered <- t.recovered + 1;
                     (* replayed entries are not in the store yet *)
                     t.dirty <- true
                   end
               | None -> incr bad
           done
         with End_of_file -> ());
        close_in ic;
        (* A crash mid-append truncates exactly the final line; more bad
           lines than that means real damage worth reporting. *)
        if !bad > 1 then
          warn t
            (Printf.sprintf "%s: skipped %d malformed journal lines" wp !bad)
  end

let create ?path () =
  let lock_path = Option.map acquire_lock path in
  let t =
    {
      path;
      lock_path;
      entries = Hashtbl.create 64;
      hits = 0;
      misses = 0;
      dirty = false;
      pending = [];
      warnings = [];
      recovered = 0;
      released = false;
    }
  in
  (match path with
  | Some p ->
      (* A corrupt store must not kill a sweep: load what parses, count
         the damage (see [load_warnings]), recompute the rest. *)
      if Sys.file_exists p then load_store t p;
      replay_wal t p;
      if t.recovered > 0 then
        Hls_telemetry.count ~n:t.recovered "cache.recovered"
  | None -> ());
  t

let find t k =
  match Hashtbl.find_opt t.entries k with
  | Some m ->
      t.hits <- t.hits + 1;
      Hls_telemetry.count "cache.hit";
      Some m
  | None ->
      t.misses <- t.misses + 1;
      Hls_telemetry.count "cache.miss";
      None

let mem t k = Hashtbl.mem t.entries k

let add t k m =
  Hashtbl.replace t.entries k m;
  t.pending <- (k, m) :: t.pending;
  t.dirty <- true

let length t = Hashtbl.length t.entries
let hits t = t.hits
let misses t = t.misses
let load_warnings t = List.rev t.warnings
let recovered t = t.recovered

let to_json t =
  let fields =
    Hashtbl.fold (fun k m acc -> (k, metrics_to_json m) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Dse_json.Obj fields

let fsync_out oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Append the entries added since the last call to the write-ahead
   journal and fsync it: after this returns, a crash loses nothing the
   sweep has computed.  Memory-only caches just drop the pending list. *)
let journal t =
  match t.path with
  | None -> t.pending <- []
  | Some path ->
      if t.pending <> [] then begin
        Hls_telemetry.count ~n:(List.length t.pending) "cache.wal_append";
        let oc =
          open_out_gen
            [ Open_append; Open_creat; Open_binary ]
            0o644 (wal_path path)
        in
        Fun.protect
          ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
          (fun () ->
            List.iter
              (fun (k, m) ->
                let line =
                  Dse_json.to_string
                    (Dse_json.Obj
                       [
                         ("k", Dse_json.String k); ("m", metrics_to_json m);
                       ])
                  ^ "\n"
                in
                output_string oc (Hls_util.Faults.on_write line))
              (List.rev t.pending);
            fsync_out oc);
        t.pending <- []
      end

let flush t =
  match t.path with
  | None -> ()
  | Some path ->
      (* Entries not yet journaled must hit the disk before the store
         rewrite: if the rewrite dies partway they are still replayable. *)
      journal t;
      if t.dirty then begin
        let tmp = tmp_path path in
        (* A stale .tmp from an earlier crash must not survive a
           successful flush. *)
        if Sys.file_exists tmp then (try Sys.remove tmp with Sys_error _ -> ());
        let oc = open_out_bin tmp in
        let renamed = ref false in
        Fun.protect
          ~finally:(fun () ->
            (try close_out oc with Sys_error _ -> ());
            if not !renamed then
              try Sys.remove tmp with Sys_error _ -> ())
          (fun () ->
            output_string oc
              (Hls_util.Faults.on_write
                 (Dse_json.to_string ~indent:true (to_json t) ^ "\n"));
            (* fsync before the rename: the atomic swap must never
               install a file whose bytes are still in flight. *)
            fsync_out oc;
            close_out oc;
            Hls_util.Faults.before_rename ();
            Sys.rename tmp path;
            renamed := true);
        (* The journal is now compacted into the store; replay would be a
           harmless no-op, but drop it so it cannot grow unboundedly. *)
        (try Sys.remove (wal_path path) with Sys_error _ -> ());
        t.dirty <- false
      end

let release t =
  if not t.released then begin
    t.released <- true;
    match t.lock_path with
    | Some lp -> ( try Sys.remove lp with Sys_error _ -> ())
    | None -> ()
  end

let close t =
  Fun.protect ~finally:(fun () -> release t) (fun () -> flush t)
