(** Content-hash memoization for design-space sweeps, crash-safe.

    Entries are keyed on (graph digest, job parameter string) and hold the
    scalar metrics of a {!Hls_core.Pipeline.report}.  Optionally backed by
    a JSON file for incremental re-runs; floats round-trip exactly, so a
    hit reproduces the original metrics byte-for-byte.

    On-disk state is three files around [path]: the JSON store itself, an
    append-only journal [path.wal] ({!journal} appends and fsyncs each
    batch; {!create} replays it; {!flush} compacts it into the store and
    deletes it), and an advisory lock [path.lock] held from {!create} to
    {!close} so two processes cannot interleave writes to one store.

    The cache is coordinator-only (looked up before dispatch, filled after
    collection), so it needs no in-process locking even under a parallel
    sweep. *)

type metrics = {
  m_flow : string;
  m_latency : int;
  m_cycle_delta : int;
  m_cycle_ns : float;
  m_execution_ns : float;
  m_op_count : int;
  m_fragment_count : int;
  m_fu_gates : int;
  m_register_gates : int;
  m_mux_gates : int;
  m_controller_gates : int;
  m_total_gates : int;
}

val metrics_of_report : Hls_core.Pipeline.report -> metrics
val metrics_to_json : metrics -> Dse_json.t
val metrics_of_json : Dse_json.t -> metrics option

type t

(** Raised by {!create} when another live process holds the store's
    advisory lock (the argument is the lock-file path).  A lock left by a
    dead process is reclaimed silently. *)
exception Locked of string

(** [create ?path ()] — with [path], the advisory lock is taken (raising
    {!Locked} if another live process holds it), existing entries are
    loaded from the file, the journal [path.wal] is replayed, and {!flush}
    writes back atomically; without [path], the cache is memory-only.  A
    missing store starts empty; a corrupt store or journal starts from
    whatever parses and records the damage in {!load_warnings} instead of
    failing the sweep. *)
val create : ?path:string -> unit -> t

(** MD5 of the graph's full printed form: any edit to the specification
    changes the digest and invalidates its entries. *)
val graph_digest : Hls_dfg.Graph.t -> string

val key : graph_digest:string -> job_key:string -> string

(** Counted lookup: updates the hit/miss statistics. *)
val find : t -> string -> metrics option

(** Uncounted membership test. *)
val mem : t -> string -> bool

val add : t -> string -> metrics -> unit
val length : t -> int
val hits : t -> int
val misses : t -> int

(** Damage found while loading the store or replaying the journal
    (malformed entries skipped, unparseable files started empty), oldest
    first; [[]] when the load was clean. *)
val load_warnings : t -> string list

(** Entries recovered by replaying the journal at {!create} time — the
    points an interrupted sweep does not have to recompute. *)
val recovered : t -> int

val to_json : t -> Dse_json.t

(** Append the entries {!add}ed since the last call to the write-ahead
    journal [path.wal] and fsync it: after [journal t] returns, a crash
    loses nothing the sweep has computed.  No-op when memory-only. *)
val journal : t -> unit

(** Write the store back to its file — journal the stragglers, write to
    [path.tmp] under [Fun.protect] (no stale temp file on an exception),
    fsync, atomically rename, then drop the compacted journal.  No-op when
    memory-only or unchanged. *)
val flush : t -> unit

(** Drop the advisory lock without flushing: crash simulation in tests,
    or abandoning a cache another process should take over.  Idempotent;
    the cache must not be written through afterwards. *)
val release : t -> unit

(** {!flush} then {!release} — the normal end of a sweep's cache
    lifetime.  The lock is released even if the flush raises. *)
val close : t -> unit
