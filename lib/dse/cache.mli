(** Content-hash memoization for design-space sweeps.

    Entries are keyed on (graph digest, job parameter string) and hold the
    scalar metrics of a {!Hls_core.Pipeline.report}.  Optionally backed by
    a JSON file for incremental re-runs; floats round-trip exactly, so a
    hit reproduces the original metrics byte-for-byte.

    The cache is coordinator-only (looked up before dispatch, filled after
    collection), so it needs no locking even under a parallel sweep. *)

type metrics = {
  m_flow : string;
  m_latency : int;
  m_cycle_delta : int;
  m_cycle_ns : float;
  m_execution_ns : float;
  m_op_count : int;
  m_fragment_count : int;
  m_fu_gates : int;
  m_register_gates : int;
  m_mux_gates : int;
  m_controller_gates : int;
  m_total_gates : int;
}

val metrics_of_report : Hls_core.Pipeline.report -> metrics
val metrics_to_json : metrics -> Dse_json.t
val metrics_of_json : Dse_json.t -> metrics option

type t

(** [create ?path ()] — with [path], existing entries are loaded from the
    file (a missing or corrupt file starts empty) and {!flush} writes back
    atomically; without, the cache is memory-only. *)
val create : ?path:string -> unit -> t

(** MD5 of the graph's full printed form: any edit to the specification
    changes the digest and invalidates its entries. *)
val graph_digest : Hls_dfg.Graph.t -> string

val key : graph_digest:string -> job_key:string -> string

(** Counted lookup: updates the hit/miss statistics. *)
val find : t -> string -> metrics option

(** Uncounted membership test. *)
val mem : t -> string -> bool

val add : t -> string -> metrics -> unit
val length : t -> int
val hits : t -> int
val misses : t -> int
val to_json : t -> Dse_json.t

(** Write the store back to its file (atomic rename); no-op when
    memory-only or unchanged. *)
val flush : t -> unit
