(** Domain-based job pool with exception isolation and per-job timeouts.

    Jobs are independent thunks.  Without [timeout_s], [workers]
    persistent domains race down a shared job counter (domain creation is
    expensive relative to a millisecond job, so spawning once per worker
    is what makes small sweeps scale).  With [timeout_s], each job gets a
    disposable domain: a job exceeding the deadline is recorded as
    [Timed_out] and its domain abandoned — OCaml cannot preempt a domain,
    so the stray computation runs on harmlessly until process exit while
    the sweep continues.  In both modes a raising job is recorded as
    [Failed]; the exception never escapes the pool. *)

type 'a outcome =
  | Done of 'a
  | Failed of string  (** [Printexc.to_string] of the escaped exception *)
  | Timed_out of float  (** seconds the job had been running *)

(** Recommended domain count, clamped to [1..8]. *)
val default_workers : unit -> int

(** [run ?workers ?timeout_s jobs] — results are index-aligned with
    [jobs].  With [workers <= 1] (or a single job) jobs run inline in the
    calling domain: still exception-isolated, but [timeout_s] is ignored
    (a timeout needs a second domain to observe it). *)
val run :
  ?workers:int -> ?timeout_s:float -> (unit -> 'a) array -> 'a outcome array

val run_list :
  ?workers:int -> ?timeout_s:float -> (unit -> 'a) list -> 'a outcome list

val outcome_ok : 'a outcome -> 'a option

(** Human-readable reason for a non-[Done] outcome. *)
val outcome_error : 'a outcome -> string option
