(* A design-space sweep, declaratively: lists of values per axis, expanded
   into the cartesian product of concrete jobs.  Axes mirror the knobs of
   the optimized flow (`Pipeline.run`): latency, fragmentation policy,
   technology library, scheduler balancing, behavioural transformation
   recipe.

   Expansion order is deterministic (latency-major, then policy, lib,
   balance, recipe), so sweep results are reproducible and independent of
   how many workers execute them. *)

type t = {
  latencies : int list;
  policies : Hls_fragment.Mobility.policy list;
  libs : (string * Hls_techlib.t) list;
  balance : bool list;
  recipes : string list;
  iterates : int list;
}

type job = {
  latency : int;
  policy : Hls_fragment.Mobility.policy;
  lib_name : string;
  lib : Hls_techlib.t;
  balance : bool;
  recipe : string;
  iterate : int;
}

type axis_error =
  | Empty_axis of string
  | Duplicate_value of { axis : string; value : string }
  | Bad_recipe of { spec : string; reason : string }

let axis_error_to_string = function
  | Empty_axis axis -> Printf.sprintf "empty %s axis" axis
  | Duplicate_value { axis; value } ->
      Printf.sprintf "duplicate value %s on the %s axis" value axis
  | Bad_recipe { spec = _; reason } -> reason

let pp_axis_error ppf e =
  Format.pp_print_string ppf (axis_error_to_string e)

(* Reject both degenerate axis shapes up front — an empty axis would
   silently produce zero jobs, a duplicated value would run (and cache)
   the same point twice under one key. *)
let checked_axis ~axis ~render values =
  match values with
  | [] -> Error (Empty_axis axis)
  | _ -> (
      let rec dup seen = function
        | [] -> None
        | v :: rest ->
            let r = render v in
            if List.mem r seen then Some r else dup (r :: seen) rest
      in
      match dup [] values with
      | Some value -> Error (Duplicate_value { axis; value })
      | None -> Ok ())

let make ?(latencies = [ 3; 4; 5; 6 ]) ?(policies = [ `Full ])
    ?(libs = [ ("ripple", Hls_techlib.default) ]) ?(balance = [ true ])
    ?(recipes = [ "none" ]) ?(iterates = [ 0 ]) () =
  let ( let* ) = Result.bind in
  let* () = checked_axis ~axis:"latency" ~render:string_of_int latencies in
  let* () =
    checked_axis ~axis:"policy"
      ~render:(function `Full -> "full" | `Coalesced -> "coalesced")
      policies
  in
  let* () = checked_axis ~axis:"library" ~render:fst libs in
  let* () = checked_axis ~axis:"balance" ~render:string_of_bool balance in
  let* () = checked_axis ~axis:"recipe" ~render:Fun.id recipes in
  let* () = checked_axis ~axis:"iterate" ~render:string_of_int iterates in
  let* () =
    List.fold_left
      (fun acc spec ->
        let* () = acc in
        match Hls_xform.Recipe.parse spec with
        | Ok _ -> Ok ()
        | Error reason -> Error (Bad_recipe { spec; reason }))
      (Ok ()) recipes
  in
  Ok { latencies; policies; libs; balance; recipes; iterates }

let make_exn ?latencies ?policies ?libs ?balance ?recipes ?iterates () =
  match make ?latencies ?policies ?libs ?balance ?recipes ?iterates () with
  | Ok s -> s
  | Error e -> invalid_arg ("Space.make: " ^ axis_error_to_string e)

let size (s : t) =
  List.length s.latencies * List.length s.policies * List.length s.libs
  * List.length s.balance * List.length s.recipes * List.length s.iterates

let jobs (s : t) =
  List.concat_map
    (fun latency ->
      List.concat_map
        (fun policy ->
          List.concat_map
            (fun (lib_name, lib) ->
              List.concat_map
                (fun balance ->
                  List.concat_map
                    (fun recipe ->
                      List.map
                        (fun iterate ->
                          { latency; policy; lib_name; lib; balance; recipe;
                            iterate })
                        s.iterates)
                    s.recipes)
                s.balance)
            s.libs)
        s.policies)
    (List.sort compare s.latencies)

let policy_name = function `Full -> "full" | `Coalesced -> "coalesced"

let policy_of_name = function
  | "full" -> Some `Full
  | "coalesced" -> Some `Coalesced
  | _ -> None

let known_libs =
  [ ("ripple", Hls_techlib.default); ("cla", Hls_techlib.fast_cla) ]

let lib_of_name name = List.assoc_opt name known_libs

(* The canonical parameter string of a job: display label and the
   parameter half of the cache key, so it must mention every axis. *)
(* The [iter] suffix appears only when the job iterates, so one-shot keys
   are byte-identical to those of caches written before the axis existed. *)
let job_key j =
  Printf.sprintf "lat=%d policy=%s lib=%s balance=%b xform=%s%s" j.latency
    (policy_name j.policy) j.lib_name j.balance j.recipe
    (if j.iterate > 0 then Printf.sprintf " iter=%d" j.iterate else "")

(* Total order over the full parameter tuple (latency numerically first,
   then the remaining axes); the stable sort key that makes sweep reports
   reproducible whatever the round structure or worker count. *)
let compare_job a b =
  compare
    (a.latency, policy_name a.policy, a.lib_name, a.balance, a.recipe,
     a.iterate)
    (b.latency, policy_name b.policy, b.lib_name, b.balance, b.recipe,
     b.iterate)

(* Latency-axis specifications: "4", "2:6", "2:10:2", "3,5,7". *)
let parse_latencies spec =
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some v when v >= 1 -> Ok v
    | Some _ -> Error (Printf.sprintf "latency must be >= 1 in %S" spec)
    | None -> Error (Printf.sprintf "bad latency spec %S" spec)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' spec with
  | [ one ] -> (
      match String.split_on_char ',' one with
      | [ single ] ->
          let* v = int_of single in
          Ok [ v ]
      | parts ->
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              let* v = int_of p in
              Ok (v :: acc))
            (Ok []) parts
          |> Result.map List.rev)
  | [ lo; hi ] | [ lo; hi; "" ] ->
      let* lo = int_of lo in
      let* hi = int_of hi in
      if hi < lo then Error (Printf.sprintf "empty latency range %S" spec)
      else Ok (List.init (hi - lo + 1) (fun i -> lo + i))
  | [ lo; hi; step ] ->
      let* lo = int_of lo in
      let* hi = int_of hi in
      let* step = int_of step in
      if hi < lo then Error (Printf.sprintf "empty latency range %S" spec)
      else
        let rec go acc v = if v > hi then List.rev acc else go (v :: acc) (v + step) in
        Ok (go [] lo)
  | _ -> Error (Printf.sprintf "bad latency spec %S (use N, LO:HI, LO:HI:STEP or a,b,c)" spec)

let pp ppf (s : t) =
  Format.fprintf ppf
    "@[<v>latencies: %s@ policies: %s@ libraries: %s@ balance: %s@ recipes: %s@ iterates: %s@ jobs: %d@]"
    (String.concat ", " (List.map string_of_int s.latencies))
    (String.concat ", " (List.map policy_name s.policies))
    (String.concat ", " (List.map fst s.libs))
    (String.concat ", " (List.map string_of_bool s.balance))
    (String.concat ", " s.recipes)
    (String.concat ", " (List.map string_of_int s.iterates))
    (size s)
