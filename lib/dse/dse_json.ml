(* Minimal JSON values: enough for the on-disk sweep cache and the
   `hlsopt explore --json` output.  No external dependency: the toolchain
   here has no yojson, and the subset we need (objects, arrays, strings,
   ints, round-tripping floats) is small.

   Floats are printed with "%.17g", which round-trips every finite IEEE
   double exactly — cache re-loads must reproduce the original metrics to
   the bit, since frontier points are compared byte-for-byte against
   freshly computed ones. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f then "null" (* NaN has no JSON spelling *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    let s = Printf.sprintf "%.17g" f in
    (* "%.17g" may print an integral double as "3"; that is still a valid
       JSON number and parses back as the same float via Float below, but
       only if we keep the value tagged: add ".0" so re-parsing yields a
       Float, keeping cache round-trips type-stable. *)
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' (* nan/inf never reach here *)
    then s
    else s ^ ".0"

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then (Buffer.add_char buf ','; nl ());
            pad (depth + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if indent then ": " else ":");
            go (depth + 1) item)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string.                   *)

exception Parse_error of string

let of_string src =
  let pos = ref 0 in
  let len = String.length src in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some src.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub src !pos (String.length word) = word
    then (pos := !pos + String.length word; value)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match src.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match src.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > len then fail "truncated \\u escape";
                   let hex = String.sub src !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* UTF-8 encode the code point (BMP only). *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char src.[!pos] do advance () done;
    let s = String.sub src start (!pos - start) in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail ("bad number " ^ s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail ("bad number " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (kv :: acc)
            | Some '}' -> advance (); Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

(* ------------------------------------------------------------------ *)
(* The one wire encoding of the failure taxonomy, shared by the sweep
   journal/report and the request/response api so the two surfaces can
   never drift: a "class" discriminator plus the class's payload.        *)

let of_failure (f : Hls_util.Failure.t) =
  let cls = String (Hls_util.Failure.class_name f) in
  match f with
  | Hls_util.Failure.Infeasible m ->
      Obj [ ("class", cls); ("message", String m) ]
  | Hls_util.Failure.Timeout s ->
      Obj [ ("class", cls); ("seconds", Float s) ]
  | Hls_util.Failure.Resource m ->
      Obj [ ("class", cls); ("message", String m) ]
  | Hls_util.Failure.Internal e ->
      Obj [ ("class", cls); ("message", String (Printexc.to_string e)) ]

let failure_of_json j =
  let str k = Option.bind (member k j) to_str in
  match str "class" with
  | Some "infeasible" -> (
      match str "message" with
      | Some m -> Ok (Hls_util.Failure.Infeasible m)
      | None -> Error "infeasible failure without message")
  | Some "timeout" -> (
      match Option.bind (member "seconds" j) to_float with
      | Some s -> Ok (Hls_util.Failure.Timeout s)
      | None -> Error "timeout failure without seconds")
  | Some "resource" -> (
      match str "message" with
      | Some m -> Ok (Hls_util.Failure.Resource m)
      | None -> Error "resource failure without message")
  | Some "internal" -> (
      match str "message" with
      (* [Remote]'s printer reproduces the text, so re-encoding is
         lossless even though the original exception is gone. *)
      | Some m -> Ok (Hls_util.Failure.Internal (Hls_util.Failure.Remote m))
      | None -> Error "internal failure without message")
  | Some other -> Error (Printf.sprintf "unknown failure class %S" other)
  | None -> Error "failure without a class field"
