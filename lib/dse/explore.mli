(** The sweep driver: expand a {!Space} into jobs, satisfy what it can
    from the {!Cache}, fan the rest out over the {!Pool}, and reduce the
    reports to a {!Pareto} frontier.

    The latency-independent prefix of the optimized flow — kernel
    extraction plus the kernel's bit-dependency net and arrival analysis
    ({!Hls_core.Pipeline.prepare}) — runs once per distinct cleanup flag;
    workers only execute the per-point suffix.  Points are collected in
    job order, so results are identical whatever the worker count. *)

type point = {
  job : Space.job;
  metrics : Cache.metrics;
  from_cache : bool;
}

type failure = { f_job : Space.job; f_reason : string }

type t = {
  graph_name : string;
  digest : string;
  points : point list;  (** successful sweep points, in job order *)
  failures : failure list;
  frontier : point list;  (** Pareto-optimal subset of [points] *)
  rounds : int;  (** 1 + executed feedback refinements *)
  wall_s : float;
  cache_hits : int;
  cache_misses : int;
}

val objectives : point -> Pareto.objectives

(** [run ?workers ?timeout_s ?cache ?feedback graph space].  [feedback]
    bounds the refinement rounds: after each round the latency axis is
    probed one step either side of every frontier point until nothing new
    remains or the bound is hit (default 0: plain sweep).  Failed or
    timed-out jobs are recorded in [failures] and the sweep continues.
    The cache, when given, is flushed before returning. *)
val run :
  ?workers:int -> ?timeout_s:float -> ?cache:Cache.t -> ?feedback:int ->
  Hls_dfg.Graph.t -> Space.t -> t

val to_json : t -> Dse_json.t
val pp : Format.formatter -> t -> unit
