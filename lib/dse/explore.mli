(** The sweep driver: expand a {!Space} into jobs, satisfy what it can
    from the {!Cache}, fan the rest out over the {!Pool}, and reduce the
    reports to a {!Pareto} frontier.

    The latency-independent prefix of the optimized flow — the
    behavioural transformation recipe, kernel extraction, the kernel's
    bit-dependency net and arrival analysis
    ({!Hls_core.Pipeline.prepare}) — runs once per distinct recipe spec;
    workers only execute the per-point suffix.  Points are collected in
    job order, so results are identical whatever the worker count.

    Resilience: transient faults are retried under the given
    {!Pool.Retry_policy} (permanently [Infeasible] points fail fast), a
    failed or timed-out fragmented flow can degrade to the direct
    (conventional) flow instead of losing its point, and the cache is
    journaled after every round so a killed sweep resumes from everything
    it had computed. *)

type point = {
  job : Space.job;
  metrics : Cache.metrics;
  from_cache : bool;
  degraded : bool;
      (** the fragmented flow failed here; metrics are the direct
          (conventional) flow's instead of nothing *)
  attempts : int;  (** pool attempts consumed; 0 for a cache hit *)
  wall_s : float;
      (** seconds actually computing this point, summed over every
          attempt (and the degraded fallback, when taken); 0 for a cache
          hit *)
}

type failure = {
  f_job : Space.job;
  f_class : Hls_util.Failure.t;
  f_reason : string;
  f_attempts : int;  (** attempts consumed before giving up *)
}

(** What each recipe of the sweep's transformation axis did to the
    behavioural graph, condensed from the engine's pass log. *)
type transform_summary = {
  t_recipe : string;  (** the recipe spec as given on the axis *)
  t_passes : int;  (** pass applications recorded *)
  t_fired : int;  (** accepted applications that changed the graph *)
  t_checks : int;  (** equivalence checks run by the verify gate *)
  t_rejected : int;  (** applications rolled back *)
  t_nodes_before : int;
  t_nodes_after : int;
  t_depth_before : int;  (** behavioural depth before the recipe *)
  t_depth_after : int;
}

type t = {
  graph_name : string;
  digest : string;
  points : point list;
      (** successful sweep points, stably sorted on the full job key
          ({!Space.compare_job}) so reports are reproducible whatever the
          round structure or worker count *)
  failures : failure list;  (** same order *)
  frontier : point list;  (** Pareto-optimal subset of [points] *)
  transforms : transform_summary list;
      (** one summary per recipe whose pass log is non-empty (the
          ["none"] recipe never appears), in recipe-spec order *)
  rounds : int;  (** 1 + executed feedback refinements *)
  wall_s : float;
  cache_hits : int;
  cache_misses : int;
  recovered : int;  (** cache entries replayed from the journal *)
  phases : (string * int * float) list;
      (** per-phase (name, calls, total seconds) from the telemetry span
          totals accumulated during this run, in pipeline-flow order;
          empty when {!Hls_telemetry} was not armed *)
  counters : (string * int) list;
      (** telemetry counter deltas accumulated during this run (e.g.
          [timing.rounds], [timing.words_swept], [cache.hit]), sorted by
          name; empty when {!Hls_telemetry} was not armed *)
  gauges : (string * (float * float)) list;
      (** telemetry gauges as (name, (last, max)) at the end of the run
          (e.g. [timing.levels], [timing.regions]), sorted by name; empty
          when {!Hls_telemetry} was not armed *)
}

(** Pool attempts beyond each point's first — the sweep's retry bill. *)
val extra_attempts : t -> int

val objectives : point -> Pareto.objectives

(** [run ?workers ?timeout_s ?cache ?feedback ?retry ?degrade graph
    space].  [feedback] bounds the refinement rounds: after each round
    the latency axis is probed one step either side of every frontier
    point until nothing new remains or the bound is hit (default 0: plain
    sweep).  [retry] (default {!Pool.Retry_policy.none}) re-dispatches
    jobs whose failure class the policy accepts, with exponential
    backoff.  With [degrade] (default false), a job whose fragmented flow
    still fails falls back to the direct flow and survives as a point
    marked [degraded] — never cached, since its metrics are not the
    optimized flow's.  Remaining failures are recorded with their class
    and attempt count and the sweep continues.  The cache is journaled
    after every round and flushed before returning (its lock is NOT
    released — callers that own the cache call {!Cache.close}).
    [verify] (default [Off]) is the equivalence-gate policy applied when
    the recipes of the transformation axis are run. *)
val run :
  ?workers:int -> ?timeout_s:float -> ?cache:Cache.t -> ?feedback:int ->
  ?retry:Pool.Retry_policy.t -> ?degrade:bool ->
  ?verify:Hls_xform.Verify.policy ->
  Hls_dfg.Graph.t -> Space.t -> t

val to_json : t -> Dse_json.t

(** Exact inverse of {!to_json} — [to_json (of_json (to_json t)) = to_json t]
    — so a sweep can cross the wire (the api's explore response) and
    re-render identically.  Failure classes decode through
    {!Dse_json.failure_of_json}; libraries are resolved by name through
    {!Space.known_libs}, so a sweep of a custom library object does not
    round-trip. *)
val of_json : Dse_json.t -> (t, string) result

val pp : Format.formatter -> t -> unit
