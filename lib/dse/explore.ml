(* The sweep driver: expand a Space into jobs, satisfy what it can from
   the cache, fan the rest out over the Pool, and reduce the reports to a
   Pareto frontier — optionally iterating a feedback loop that refines the
   latency axis around the current frontier.

   The expensive shared prefix of the optimized flow (the behavioural
   transformation recipe, kernel extraction, the kernel's bit-dependency
   net and arrival analysis) is computed once per distinct recipe spec
   and shared by every job; worker domains only run the per-point suffix
   (`Pipeline.run`).  Results are collected in job
   order, so the outcome is identical whatever the worker count. *)

module Pipeline = Hls_core.Pipeline
module Failure = Hls_util.Failure
module Engine = Hls_xform.Engine
module Plan = Hls_xform.Plan

type point = {
  job : Space.job;
  metrics : Cache.metrics;
  from_cache : bool;
  degraded : bool;
      (** the fragmented flow failed here; metrics are the direct
          (conventional) flow's instead of nothing *)
  attempts : int;  (** pool attempts consumed; 0 for a cache hit *)
  wall_s : float;
      (** seconds actually computing this point, summed over every
          attempt (and the degraded fallback, when taken); 0 for a cache
          hit *)
}

type failure = {
  f_job : Space.job;
  f_class : Failure.t;
  f_reason : string;
  f_attempts : int;
}

type transform_summary = {
  t_recipe : string;  (** the recipe spec as given on the axis *)
  t_passes : int;  (** pass applications recorded *)
  t_fired : int;  (** accepted applications that changed the graph *)
  t_checks : int;  (** equivalence checks run by the verify gate *)
  t_rejected : int;  (** applications rolled back *)
  t_nodes_before : int;
  t_nodes_after : int;
  t_depth_before : int;  (** behavioural depth before the recipe *)
  t_depth_after : int;
}

type t = {
  graph_name : string;
  digest : string;
  points : point list;
      (** successful sweep points, stably sorted on the full job key *)
  failures : failure list;  (** same order *)
  frontier : point list;  (** Pareto-optimal subset of [points] *)
  transforms : transform_summary list;
      (** one summary per recipe whose pass log is non-empty (the
          ["none"] recipe never appears), in recipe-spec order *)
  rounds : int;  (** 1 + executed feedback refinements *)
  wall_s : float;
  cache_hits : int;
  cache_misses : int;
  recovered : int;  (** cache entries replayed from the journal *)
  phases : (string * int * float) list;
      (** per-phase (name, calls, total seconds) from the telemetry span
          totals accumulated during this run; empty when the sink was not
          armed *)
  counters : (string * int) list;
      (** telemetry counter deltas accumulated during this run (e.g.
          [timing.rounds], [timing.words_swept], [cache.hit]), sorted by
          name; empty when the sink was not armed *)
  gauges : (string * (float * float)) list;
      (** telemetry gauges as (name, (last, max)) at the end of the run
          (e.g. [timing.levels], [timing.regions]), sorted by name; empty
          when the sink was not armed *)
}

(** Pool attempts beyond each point's first (the sweep's retry bill). *)
let extra_attempts t =
  let extra n = max 0 (n - 1) in
  List.fold_left (fun acc p -> acc + extra p.attempts) 0 t.points
  + List.fold_left (fun acc f -> acc + extra f.f_attempts) 0 t.failures

let objectives p =
  {
    Pareto.cycle_ns = p.metrics.Cache.m_cycle_ns;
    Pareto.area_gates = p.metrics.Cache.m_total_gates;
    Pareto.latency = p.metrics.Cache.m_latency;
  }

let compute_frontier points = Pareto.frontier ~objectives points

(* Graceful degradation: when the fragmented flow failed at this point
   and the caller asked for it, fall back to the direct (conventional)
   flow on the original graph so the point survives — marked, never
   cached (its metrics are not the optimized flow's).  The fallback runs
   serially in the coordinator: it only fires on failures, which are
   rare, and the conventional flow is cheap next to fragmentation. *)
let degrade_point ~graph (job : Space.job) =
  match
    Pipeline.conventional ~lib:job.Space.lib graph ~latency:job.Space.latency
  with
  | r -> Some (Cache.metrics_of_report r)
  | exception _ -> None

(* One batch of jobs: cache hits become points immediately, the rest run
   on the pool (with the retry policy).  Returns points and failures in
   job order. *)
let run_round ~cache ~digest ~graph ~kernels ~workers ~timeout_s ~retry
    ~degrade jobs =
  let lookups =
    List.map
      (fun (job : Space.job) ->
        let key = Cache.key ~graph_digest:digest ~job_key:(Space.job_key job) in
        (job, key, Cache.find cache key))
      jobs
  in
  let misses =
    List.filter_map
      (fun (job, key, hit) ->
        match hit with None -> Some (job, key) | Some _ -> None)
      lookups
  in
  (* Per-miss compute seconds, accumulated across retries.  Each slot is
     written by whichever worker domain runs the job and read only after
     [run_retry] returns (its joins are the happens-before edge); a
     timed-out job's abandoned domain may still add to its slot, but that
     slot only feeds a failure report, never a point. *)
  let times = Array.make (max 1 (List.length misses)) 0. in
  let thunks =
    List.mapi
      (fun i ((job : Space.job), _key) () ->
        let t0 = Unix.gettimeofday () in
        Fun.protect
          ~finally:(fun () ->
            times.(i) <- times.(i) +. (Unix.gettimeofday () -. t0))
          (fun () ->
            let prepared = List.assoc job.Space.recipe kernels in
            let config =
              Pipeline.make_config ~lib:job.Space.lib
                ~policy:job.Space.policy ~balance:job.Space.balance
                ~iterate:job.Space.iterate ()
            in
            match
              Pipeline.run config prepared ~latency:job.Space.latency
            with
            | Ok r -> Cache.metrics_of_report r.Pipeline.opt_report
            | Error f -> raise (Failure.Flow_failure f)))
      misses
  in
  let outcomes = Pool.run_retry ?workers ?timeout_s ~retry (Array.of_list thunks) in
  let computed = Hashtbl.create 16 in
  List.iteri
    (fun i (job, key) ->
      (match outcomes.(i) with
      | Pool.Done m, _ -> Cache.add cache key m
      | (Pool.Failed _ | Pool.Timed_out _), _ -> ());
      Hashtbl.replace computed (Space.job_key job) (outcomes.(i), times.(i)))
    misses;
  List.fold_left
    (fun (points, failures) (job, _key, hit) ->
      match hit with
      | Some m ->
          ( { job; metrics = m; from_cache = true; degraded = false;
              attempts = 0; wall_s = 0. }
            :: points,
            failures )
      | None -> (
          match Hashtbl.find computed (Space.job_key job) with
          | (Pool.Done m, attempts), wall ->
              ( { job; metrics = m; from_cache = false; degraded = false;
                  attempts; wall_s = wall }
                :: points,
                failures )
          | (outcome, attempts), wall -> (
              let f_class = Option.get (Pool.failure_of_outcome outcome) in
              let fail () =
                ( points,
                  {
                    f_job = job;
                    f_class;
                    f_reason = Failure.to_string f_class;
                    f_attempts = attempts;
                  }
                  :: failures )
              in
              if not degrade then fail ()
              else
                let t0 = Unix.gettimeofday () in
                match degrade_point ~graph job with
                | Some m ->
                    ( { job; metrics = m; from_cache = false; degraded = true;
                        attempts;
                        wall_s = wall +. (Unix.gettimeofday () -. t0) }
                      :: points,
                      failures )
                | None -> fail ())))
    ([], []) lookups
  |> fun (points, failures) -> (List.rev points, List.rev failures)

(* Feedback refinement: probe latency±1 around every frontier point
   (other axes unchanged), skipping anything already attempted. *)
let refinement_candidates ~attempted frontier =
  List.concat_map
    (fun { job = (j : Space.job); _ } ->
      List.filter_map
        (fun dl ->
          let latency = j.Space.latency + dl in
          if latency < 1 then None
          else
            let candidate = { j with Space.latency } in
            if Hashtbl.mem attempted (Space.job_key candidate) then None
            else Some candidate)
        [ -1; 1 ])
    frontier
  |> List.sort_uniq (fun a b ->
         compare (Space.job_key a) (Space.job_key b))

(* Canonical phase presentation order: pipeline stages in flow order,
   then the pool's per-job span, then anything else alphabetically. *)
let phase_rank =
  let canon =
    [ "kernel"; "bitnet"; "arrival"; "mobility"; "fragment"; "schedule";
      "bind"; "netlist"; "job" ]
  in
  fun name ->
    let rec go i = function
      | [] -> i
      | c :: rest -> if String.equal c name then i else go (i + 1) rest
    in
    go 0 canon

(* Span totals accumulated during this run = totals at the end minus the
   snapshot taken at the start (the sink is global and never cleared
   mid-run). *)
let phase_delta before after =
  List.filter_map
    (fun (name, (calls, secs)) ->
      let calls0, secs0 =
        match List.assoc_opt name before with
        | Some c_s -> c_s
        | None -> (0, 0.)
      in
      if calls > calls0 then Some (name, calls - calls0, secs -. secs0)
      else None)
    after
  |> List.sort (fun (a, _, _) (b, _, _) ->
         compare (phase_rank a, a) (phase_rank b, b))

(* The per-recipe summary a sweep report carries, condensed from the
   engine's pass log; [None] when no pass ran (the "none" recipe).  A
   sampled-policy rollback (a rejected trailing "verify" entry) means
   the prepared kernel is the untransformed one, so before = after. *)
let summarize_transform spec (p : Pipeline.prepared) =
  match p.Pipeline.p_xform with
  | [] -> None
  | first :: _ as log ->
      let fired e = e.Engine.e_fired && e.Engine.e_accepted in
      let plan e = e.Engine.e_plan in
      let rolled_back =
        match List.rev log with
        | last :: _ -> not last.Engine.e_accepted && last.Engine.e_pass = "verify"
        | [] -> false
      in
      let last_accepted =
        List.fold_left (fun acc e -> if fired e then Some e else acc) None log
      in
      let nodes_before = (plan first).Plan.nodes_before in
      let depth_before = (plan first).Plan.depth_before in
      let nodes_after, depth_after =
        match last_accepted with
        | Some e when not rolled_back ->
            ((plan e).Plan.nodes_after, (plan e).Plan.depth_after)
        | _ -> (nodes_before, depth_before)
      in
      Some
        {
          t_recipe = spec;
          t_passes = List.length log;
          t_fired = List.length (List.filter fired log);
          t_checks =
            List.length (List.filter (fun e -> e.Engine.e_verdict <> None) log);
          t_rejected =
            List.length (List.filter (fun e -> not e.Engine.e_accepted) log);
          t_nodes_before = nodes_before;
          t_nodes_after = nodes_after;
          t_depth_before = depth_before;
          t_depth_after = depth_after;
        }

let run ?workers ?timeout_s ?cache ?(feedback = 0)
    ?(retry = Pool.Retry_policy.none) ?(degrade = false)
    ?(verify = Hls_xform.Verify.Off) graph (space : Space.t) =
  let t0 = Unix.gettimeofday () in
  let spans0 = Hls_telemetry.span_totals () in
  let counters0 = Hls_telemetry.counter_totals () in
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let digest = Cache.graph_digest graph in
  let kernels =
    List.map
      (fun spec ->
        let transform = Hls_xform.Recipe.of_string_exn spec in
        (* The same worker budget that fans points out also parallelizes
           the arrival wavefront inside each prepared kernel. *)
        (spec, Pipeline.prepare ~transform ~verify ?workers graph))
      (List.sort_uniq compare space.Space.recipes)
  in
  let transforms =
    List.filter_map (fun (spec, p) -> summarize_transform spec p) kernels
  in
  let attempted = Hashtbl.create 64 in
  let points = ref [] and failures = ref [] and rounds = ref 0 in
  let execute jobs =
    let jobs =
      List.filter
        (fun j -> not (Hashtbl.mem attempted (Space.job_key j)))
        jobs
    in
    List.iter (fun j -> Hashtbl.replace attempted (Space.job_key j) ()) jobs;
    if jobs <> [] then begin
      incr rounds;
      let pts, fls =
        run_round ~cache ~digest ~graph ~kernels ~workers ~timeout_s ~retry
          ~degrade jobs
      in
      points := !points @ pts;
      failures := !failures @ fls;
      (* Journal every completed round: a crash from here on replays
         these points instead of recomputing them. *)
      Cache.journal cache
    end
  in
  execute (Space.jobs space);
  let remaining = ref feedback in
  let continue = ref true in
  while !remaining > 0 && !continue do
    let candidates =
      refinement_candidates ~attempted (compute_frontier !points)
    in
    if candidates = [] then continue := false
    else begin
      execute candidates;
      decr remaining
    end
  done;
  Cache.flush cache;
  (* Stable sort on the full parameter tuple: the report reads the same
     whatever the round structure (feedback refinements append out of
     latency order) or worker count. *)
  let points =
    List.stable_sort (fun a b -> Space.compare_job a.job b.job) !points
  in
  let failures =
    List.stable_sort (fun a b -> Space.compare_job a.f_job b.f_job) !failures
  in
  let phases =
    if Hls_telemetry.armed () then
      phase_delta spans0 (Hls_telemetry.span_totals ())
    else []
  in
  let counters =
    if Hls_telemetry.armed () then
      (* Deltas against the run-start snapshot: only what this sweep
         contributed, even when the sink stays armed across runs. *)
      List.filter_map
        (fun (name, total) ->
          let before =
            Option.value (List.assoc_opt name counters0) ~default:0
          in
          if total > before then Some (name, total - before) else None)
        (Hls_telemetry.counter_totals ())
    else []
  in
  let gauges =
    if Hls_telemetry.armed () then Hls_telemetry.gauge_bindings () else []
  in
  {
    graph_name = Hls_dfg.Graph.name graph;
    digest;
    points;
    failures;
    transforms;
    frontier = compute_frontier points;
    rounds = !rounds;
    wall_s = Unix.gettimeofday () -. t0;
    cache_hits = Cache.hits cache;
    cache_misses = Cache.misses cache;
    recovered = Cache.recovered cache;
    phases;
    counters;
    gauges;
  }

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let job_to_json (j : Space.job) =
  Dse_json.Obj
    [
      ("latency", Dse_json.Int j.Space.latency);
      ("policy", Dse_json.String (Space.policy_name j.Space.policy));
      ("lib", Dse_json.String j.Space.lib_name);
      ("balance", Dse_json.Bool j.Space.balance);
      ("recipe", Dse_json.String j.Space.recipe);
      ("iterate", Dse_json.Int j.Space.iterate);
    ]

let transform_summary_to_json s =
  Dse_json.Obj
    [
      ("recipe", Dse_json.String s.t_recipe);
      ("passes", Dse_json.Int s.t_passes);
      ("fired", Dse_json.Int s.t_fired);
      ("checks", Dse_json.Int s.t_checks);
      ("rejected", Dse_json.Int s.t_rejected);
      ("nodes_before", Dse_json.Int s.t_nodes_before);
      ("nodes_after", Dse_json.Int s.t_nodes_after);
      ("depth_before", Dse_json.Int s.t_depth_before);
      ("depth_after", Dse_json.Int s.t_depth_after);
    ]

let point_to_json p =
  Dse_json.Obj
    [
      ("job", job_to_json p.job);
      ("metrics", Cache.metrics_to_json p.metrics);
      ("from_cache", Dse_json.Bool p.from_cache);
      ("degraded", Dse_json.Bool p.degraded);
      ("attempts", Dse_json.Int p.attempts);
      ("wall_s", Dse_json.Float p.wall_s);
    ]

let to_json t =
  Dse_json.Obj
    [
      ("graph", Dse_json.String t.graph_name);
      ("digest", Dse_json.String t.digest);
      ("rounds", Dse_json.Int t.rounds);
      ("wall_s", Dse_json.Float t.wall_s);
      ( "cache",
        Dse_json.Obj
          [
            ("hits", Dse_json.Int t.cache_hits);
            ("misses", Dse_json.Int t.cache_misses);
            ("recovered", Dse_json.Int t.recovered);
          ] );
      ("points", Dse_json.List (List.map point_to_json t.points));
      ( "failures",
        Dse_json.List
          (List.map
             (fun f ->
               Dse_json.Obj
                 [
                   ("job", job_to_json f.f_job);
                   (* The shared taxonomy encoding (Dse_json.of_failure):
                      the api error surface uses the same bytes. *)
                   ("failure", Dse_json.of_failure f.f_class);
                   ("reason", Dse_json.String f.f_reason);
                   ("attempts", Dse_json.Int f.f_attempts);
                 ])
             t.failures) );
      ("frontier", Dse_json.List (List.map point_to_json t.frontier));
      ( "transforms",
        Dse_json.List (List.map transform_summary_to_json t.transforms) );
      ( "telemetry",
        Dse_json.Obj
          [
            ("extra_attempts", Dse_json.Int (extra_attempts t));
            ( "phases",
              Dse_json.List
                (List.map
                   (fun (name, calls, secs) ->
                     Dse_json.Obj
                       [
                         ("name", Dse_json.String name);
                         ("calls", Dse_json.Int calls);
                         ("total_s", Dse_json.Float secs);
                       ])
                   t.phases) );
            ( "counters",
              Dse_json.List
                (List.map
                   (fun (name, total) ->
                     Dse_json.Obj
                       [
                         ("name", Dse_json.String name);
                         ("total", Dse_json.Int total);
                       ])
                   t.counters) );
            ( "gauges",
              Dse_json.List
                (List.map
                   (fun (name, (last, mx)) ->
                     Dse_json.Obj
                       [
                         ("name", Dse_json.String name);
                         ("last", Dse_json.Float last);
                         ("max", Dse_json.Float mx);
                       ])
                   t.gauges) );
          ] );
    ]

(* Decoding: the exact inverse of to_json, so a sweep can cross a wire
   (the api's explore response) or a file and re-render identically.
   Libraries are resolved by name through Space.known_libs — a sweep of a
   custom library object does not round-trip, which the api documents. *)

let ( let* ) = Result.bind

let of_json_field name conv j =
  match Option.bind (Dse_json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "explore json: bad or missing %S" name)

let job_of_json j =
  let* latency = of_json_field "latency" Dse_json.to_int j in
  let* policy_name = of_json_field "policy" Dse_json.to_str j in
  let* lib_name = of_json_field "lib" Dse_json.to_str j in
  let* balance = of_json_field "balance" Dse_json.to_bool j in
  let* recipe = of_json_field "recipe" Dse_json.to_str j in
  let* policy =
    Option.to_result
      ~none:(Printf.sprintf "explore json: unknown policy %S" policy_name)
      (Space.policy_of_name policy_name)
  in
  let* lib =
    Option.to_result
      ~none:(Printf.sprintf "explore json: unknown library %S" lib_name)
      (Space.lib_of_name lib_name)
  in
  (* Absent in pre-axis sweep files: default to one-shot. *)
  let iterate =
    match Option.bind (Dse_json.member "iterate" j) Dse_json.to_int with
    | Some i -> i
    | None -> 0
  in
  Ok { Space.latency; policy; lib_name; lib; balance; recipe; iterate }

let transform_summary_of_json j =
  let* t_recipe = of_json_field "recipe" Dse_json.to_str j in
  let* t_passes = of_json_field "passes" Dse_json.to_int j in
  let* t_fired = of_json_field "fired" Dse_json.to_int j in
  let* t_checks = of_json_field "checks" Dse_json.to_int j in
  let* t_rejected = of_json_field "rejected" Dse_json.to_int j in
  let* t_nodes_before = of_json_field "nodes_before" Dse_json.to_int j in
  let* t_nodes_after = of_json_field "nodes_after" Dse_json.to_int j in
  let* t_depth_before = of_json_field "depth_before" Dse_json.to_int j in
  let* t_depth_after = of_json_field "depth_after" Dse_json.to_int j in
  Ok
    {
      t_recipe;
      t_passes;
      t_fired;
      t_checks;
      t_rejected;
      t_nodes_before;
      t_nodes_after;
      t_depth_before;
      t_depth_after;
    }

let point_of_json j =
  let* job = Result.bind (of_json_field "job" Option.some j) job_of_json in
  let* metrics =
    Result.bind
      (of_json_field "metrics" Option.some j)
      (fun m ->
        Option.to_result ~none:"explore json: bad metrics"
          (Cache.metrics_of_json m))
  in
  let* from_cache = of_json_field "from_cache" Dse_json.to_bool j in
  let* degraded = of_json_field "degraded" Dse_json.to_bool j in
  let* attempts = of_json_field "attempts" Dse_json.to_int j in
  let* wall_s = of_json_field "wall_s" Dse_json.to_float j in
  Ok { job; metrics; from_cache; degraded; attempts; wall_s }

let failure_of_json j =
  let* f_job = Result.bind (of_json_field "job" Option.some j) job_of_json in
  let* f_class =
    Result.bind
      (of_json_field "failure" Option.some j)
      Dse_json.failure_of_json
  in
  let* f_reason = of_json_field "reason" Dse_json.to_str j in
  let* f_attempts = of_json_field "attempts" Dse_json.to_int j in
  Ok { f_job; f_class; f_reason; f_attempts }

let list_of_json name conv j =
  Result.bind (of_json_field name Dse_json.to_list j) (fun items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = conv item in
          Ok (v :: acc))
        (Ok []) items
      |> Result.map List.rev)

let of_json j =
  let* graph_name = of_json_field "graph" Dse_json.to_str j in
  let* digest = of_json_field "digest" Dse_json.to_str j in
  let* rounds = of_json_field "rounds" Dse_json.to_int j in
  let* wall_s = of_json_field "wall_s" Dse_json.to_float j in
  let* cache = of_json_field "cache" Option.some j in
  let* cache_hits = of_json_field "hits" Dse_json.to_int cache in
  let* cache_misses = of_json_field "misses" Dse_json.to_int cache in
  let* recovered = of_json_field "recovered" Dse_json.to_int cache in
  let* points = list_of_json "points" point_of_json j in
  let* failures = list_of_json "failures" failure_of_json j in
  let* frontier = list_of_json "frontier" point_of_json j in
  let* transforms = list_of_json "transforms" transform_summary_of_json j in
  let* telemetry = of_json_field "telemetry" Option.some j in
  let* phases =
    list_of_json "phases"
      (fun p ->
        let* name = of_json_field "name" Dse_json.to_str p in
        let* calls = of_json_field "calls" Dse_json.to_int p in
        let* total_s = of_json_field "total_s" Dse_json.to_float p in
        Ok (name, calls, total_s))
      telemetry
  in
  (* Absent in documents written before the counter/gauge export; decode
     them as empty rather than rejecting old files. *)
  let optional_list name conv =
    if Dse_json.member name telemetry = None then Ok []
    else list_of_json name conv telemetry
  in
  let* counters =
    optional_list "counters" (fun c ->
        let* name = of_json_field "name" Dse_json.to_str c in
        let* total = of_json_field "total" Dse_json.to_int c in
        Ok (name, total))
  in
  let* gauges =
    optional_list "gauges" (fun g ->
        let* name = of_json_field "name" Dse_json.to_str g in
        let* last = of_json_field "last" Dse_json.to_float g in
        let* mx = of_json_field "max" Dse_json.to_float g in
        Ok (name, (last, mx)))
  in
  Ok
    {
      graph_name;
      digest;
      points;
      failures;
      frontier;
      transforms;
      rounds;
      wall_s;
      cache_hits;
      cache_misses;
      recovered;
      phases;
      counters;
      gauges;
    }

let pp ppf t =
  let on_frontier =
    let keys =
      List.map (fun p -> Space.job_key p.job) t.frontier
    in
    fun p -> List.mem (Space.job_key p.job) keys
  in
  let row p =
    let m = p.metrics in
    [
      string_of_int p.job.Space.latency;
      Space.policy_name p.job.Space.policy;
      p.job.Space.lib_name;
      (if p.job.Space.balance then "bal" else "asap");
      (if p.job.Space.recipe = "none" then "-" else p.job.Space.recipe);
      Printf.sprintf "%.2f" m.Cache.m_cycle_ns;
      Printf.sprintf "%.2f" m.Cache.m_execution_ns;
      string_of_int m.Cache.m_total_gates;
      string_of_int m.Cache.m_fragment_count;
      Printf.sprintf "%.1f" (p.wall_s *. 1e3);
      (if p.degraded then "degraded"
       else if p.from_cache then "cache"
       else "run");
      (if p.attempts > 1 then string_of_int p.attempts else "");
      (if on_frontier p then "*" else "");
    ]
  in
  let degraded_count =
    List.length (List.filter (fun p -> p.degraded) t.points)
  in
  Format.fprintf ppf
    "sweep of %s: %d points (%d degraded), %d failures, %d round%s, %.3f s@."
    t.graph_name (List.length t.points) degraded_count
    (List.length t.failures) t.rounds
    (if t.rounds = 1 then "" else "s")
    t.wall_s;
  Format.fprintf ppf "cache: %d hits, %d misses%s@.@." t.cache_hits
    t.cache_misses
    (if t.recovered > 0 then
       Printf.sprintf ", %d recovered from journal" t.recovered
     else "");
  Format.pp_print_string ppf
    (Hls_util.Pretty.render_table
       ~header:
         [
           "lat"; "policy"; "lib"; "sched"; "xform"; "cycle/ns"; "exec/ns";
           "gates"; "frags"; "ms"; "src"; "try"; "pareto";
         ]
       (List.map row t.points));
  if t.transforms <> [] then begin
    Format.fprintf ppf "@.transformations:@.";
    List.iter
      (fun s ->
        Format.fprintf ppf
          "  %s: %d/%d pass%s fired, nodes %d -> %d, depth %d -> %d, %d \
           check%s, %d rejected@."
          s.t_recipe s.t_fired s.t_passes
          (if s.t_passes = 1 then "" else "es")
          s.t_nodes_before s.t_nodes_after s.t_depth_before s.t_depth_after
          s.t_checks
          (if s.t_checks = 1 then "" else "s")
          s.t_rejected)
      t.transforms
  end;
  List.iter
    (fun f ->
      Format.fprintf ppf "failed (%s, %d attempt%s): %s: %s@."
        (Failure.class_name f.f_class) f.f_attempts
        (if f.f_attempts = 1 then "" else "s")
        (Space.job_key f.f_job) f.f_reason)
    t.failures;
  Format.fprintf ppf "@.Pareto frontier (%d point%s):@."
    (List.length t.frontier)
    (if List.length t.frontier = 1 then "" else "s");
  List.iter
    (fun p ->
      Format.fprintf ppf "  %s -> %a@." (Space.job_key p.job)
        Pareto.pp_objectives (objectives p))
    t.frontier;
  let extra = extra_attempts t in
  if extra > 0 then
    Format.fprintf ppf "@.retries: %d extra attempt%s@." extra
      (if extra = 1 then "" else "s");
  if t.phases <> [] then begin
    Format.fprintf ppf "@.phase breakdown:@.";
    Format.pp_print_string ppf
      (Hls_util.Pretty.render_table
         ~header:[ "phase"; "calls"; "total/ms"; "mean/us" ]
         (List.map
            (fun (name, calls, secs) ->
              [
                name;
                string_of_int calls;
                Printf.sprintf "%.2f" (secs *. 1e3);
                Printf.sprintf "%.1f" (secs /. float_of_int calls *. 1e6);
              ])
            t.phases))
  end
