(* The domain pool lives in lib/pool (Hls_pool) so layers below the DSE
   engine — the region-parallel timing kernels in lib/timing — can share
   it without a dependency cycle.  Re-exported here to keep the
   historical [Hls_dse.Pool] address every sweep consumer uses. *)
include Hls_pool
