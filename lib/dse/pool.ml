(* A small Domain-based job pool with exception isolation and per-job
   timeouts.

   Two execution strategies share the same interface:

   - Without a timeout, [workers] persistent domains race down a shared
     Atomic job counter.  Domain creation is expensive relative to a
     millisecond scheduling job (thread spawn + runtime synchronization),
     so spawning once per worker rather than once per job is what makes
     small sweeps actually scale.  Each result slot is written by exactly
     one domain and read only after [Domain.join], which provides the
     happens-before edge.

   - With a timeout, each job gets its own disposable domain (at most
     [workers] in flight) and the coordinator polls completion cells: a
     job past its deadline is recorded as [Timed_out] and its domain
     abandoned — OCaml cannot preempt a domain, so the stray computation
     runs on harmlessly until process exit while its slot is released and
     the sweep moves on.  Per-job spawn cost is the price of being able
     to walk away from a diverging job.

   In both strategies exceptions are caught *inside* the worker domain,
   so one raising job can never take the sweep down.  With
   [workers <= 1] jobs run inline in the calling domain (still
   exception-isolated; timeouts cannot be enforced without a second
   domain and are ignored — documented in the interface). *)

type 'a outcome = Done of 'a | Failed of string | Timed_out of float

let default_workers () = max 1 (min 8 (Domain.recommended_domain_count ()))

type 'a flight = {
  idx : int;
  cell : ('a, string) result option Atomic.t;
  domain : unit Domain.t;
  started : float;
}

let run_serial jobs results =
  Array.iteri
    (fun i job ->
      results.(i) <-
        (match job () with
        | v -> Done v
        | exception e -> Failed (Printexc.to_string e)))
    jobs

let run_pooled ~workers jobs results =
  let n = Array.length jobs in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          (match jobs.(i) () with
          | v -> Done v
          | exception e -> Failed (Printexc.to_string e));
        loop ()
      end
    in
    loop ()
  in
  let domains = List.init (min workers n) (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains

let run_with_deadline ~workers ~timeout_s jobs results =
  let n = Array.length jobs in
  let next = ref 0 in
  let in_flight = ref [] in
  let spawn i =
    let cell = Atomic.make None in
    let domain =
      Domain.spawn (fun () ->
          let r =
            match jobs.(i) () with
            | v -> Ok v
            | exception e -> Error (Printexc.to_string e)
          in
          Atomic.set cell (Some r))
    in
    { idx = i; cell; domain; started = Unix.gettimeofday () }
  in
  while !next < n || !in_flight <> [] do
    while !next < n && List.length !in_flight < workers do
      in_flight := spawn !next :: !in_flight;
      incr next
    done;
    let now = Unix.gettimeofday () in
    in_flight :=
      List.filter
        (fun f ->
          match Atomic.get f.cell with
          | Some (Ok v) ->
              Domain.join f.domain;
              results.(f.idx) <- Done v;
              false
          | Some (Error m) ->
              Domain.join f.domain;
              results.(f.idx) <- Failed m;
              false
          | None ->
              if now -. f.started > timeout_s then begin
                results.(f.idx) <- Timed_out (now -. f.started);
                false (* abandoned, see module comment *)
              end
              else true)
        !in_flight;
    if !in_flight <> [] then Unix.sleepf 0.0002
  done

let run ?workers ?timeout_s jobs =
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  let n = Array.length jobs in
  let results = Array.make n (Failed "job not run") in
  if n > 0 then
    if workers <= 1 || n = 1 then run_serial jobs results
    else begin
      match timeout_s with
      | None -> run_pooled ~workers jobs results
      | Some timeout_s -> run_with_deadline ~workers ~timeout_s jobs results
    end;
  results

let run_list ?workers ?timeout_s jobs =
  Array.to_list (run ?workers ?timeout_s (Array.of_list jobs))

let outcome_ok = function Done v -> Some v | Failed _ | Timed_out _ -> None

let outcome_error = function
  | Done _ -> None
  | Failed m -> Some m
  | Timed_out s -> Some (Printf.sprintf "timed out after %.2f s" s)
