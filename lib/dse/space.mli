(** Declarative description of a design-space sweep: one list of values
    per knob of the optimized flow, expanded into the cartesian product of
    concrete jobs in a deterministic (latency-major) order. *)

type t = {
  latencies : int list;
  policies : Hls_fragment.Mobility.policy list;
  libs : (string * Hls_techlib.t) list;  (** (display name, library) *)
  balance : bool list;
  recipes : string list;
      (** behavioural transformation recipe specs ({!Hls_xform.Recipe});
          ["none"] is the identity *)
  iterates : int list;
      (** feedback-iteration round budgets ({!Hls_iter.Iter}); [0] is
          one-shot scheduling *)
}

type job = {
  latency : int;
  policy : Hls_fragment.Mobility.policy;
  lib_name : string;
  lib : Hls_techlib.t;
  balance : bool;
  recipe : string;  (** the recipe spec as given on the axis *)
  iterate : int;  (** feedback-iteration budget; 0 = one-shot *)
}

(** Why a sweep description is not a sweep: an axis with no values, the
    same value twice on one axis (the point would run — and cache —
    twice under one key), or a recipe spec {!Hls_xform.Recipe.parse}
    rejects. *)
type axis_error =
  | Empty_axis of string  (** axis name *)
  | Duplicate_value of { axis : string; value : string }
  | Bad_recipe of { spec : string; reason : string }

val axis_error_to_string : axis_error -> string
val pp_axis_error : Format.formatter -> axis_error -> unit

(** Defaults: latencies 3–6, [`Full] policy, ripple library, balancing on,
    the ["none"] recipe, no iteration. *)
val make :
  ?latencies:int list ->
  ?policies:Hls_fragment.Mobility.policy list ->
  ?libs:(string * Hls_techlib.t) list ->
  ?balance:bool list ->
  ?recipes:string list ->
  ?iterates:int list ->
  unit -> (t, axis_error) result

(** [make], raising [Invalid_argument] on an axis error. *)
val make_exn :
  ?latencies:int list ->
  ?policies:Hls_fragment.Mobility.policy list ->
  ?libs:(string * Hls_techlib.t) list ->
  ?balance:bool list ->
  ?recipes:string list ->
  ?iterates:int list ->
  unit -> t

val size : t -> int

(** Cartesian expansion, latencies in ascending order. *)
val jobs : t -> job list

val policy_name : Hls_fragment.Mobility.policy -> string
val policy_of_name : string -> Hls_fragment.Mobility.policy option

(** The libraries a sweep can name on the command line. *)
val known_libs : (string * Hls_techlib.t) list

val lib_of_name : string -> Hls_techlib.t option

(** Canonical parameter string: display label and the parameter half of
    the cache key (mentions every axis; the iterate suffix appears only
    for iterating jobs, so pre-axis cache keys stay valid). *)
val job_key : job -> string

(** Total order over the full parameter tuple (latency numerically,
    then policy, library, balance, recipe): the stable sort key that
    makes sweep reports reproducible across round structures and worker
    counts. *)
val compare_job : job -> job -> int

(** Latency-axis specifications: ["4"], ["2:6"], ["2:10:2"], ["3,5,7"]. *)
val parse_latencies : string -> (int list, string) result

val pp : Format.formatter -> t -> unit
