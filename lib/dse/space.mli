(** Declarative description of a design-space sweep: one list of values
    per knob of the optimized flow, expanded into the cartesian product of
    concrete jobs in a deterministic (latency-major) order. *)

type t = {
  latencies : int list;
  policies : Hls_fragment.Mobility.policy list;
  libs : (string * Hls_techlib.t) list;  (** (display name, library) *)
  balance : bool list;
  cleanup : bool list;
}

type job = {
  latency : int;
  policy : Hls_fragment.Mobility.policy;
  lib_name : string;
  lib : Hls_techlib.t;
  balance : bool;
  cleanup : bool;
}

(** Defaults: latencies 3–6, [`Full] policy, ripple library, balancing on,
    cleanup off.  Raises [Invalid_argument] on an empty axis. *)
val make :
  ?latencies:int list ->
  ?policies:Hls_fragment.Mobility.policy list ->
  ?libs:(string * Hls_techlib.t) list ->
  ?balance:bool list ->
  ?cleanup:bool list ->
  unit -> t

val size : t -> int

(** Cartesian expansion; duplicate latencies are collapsed. *)
val jobs : t -> job list

val policy_name : Hls_fragment.Mobility.policy -> string
val policy_of_name : string -> Hls_fragment.Mobility.policy option

(** The libraries a sweep can name on the command line. *)
val known_libs : (string * Hls_techlib.t) list

val lib_of_name : string -> Hls_techlib.t option

(** Canonical parameter string: display label and the parameter half of
    the cache key (mentions every axis). *)
val job_key : job -> string

(** Total order over the full parameter tuple (latency numerically,
    then policy, library, balance, cleanup): the stable sort key that
    makes sweep reports reproducible across round structures and worker
    counts. *)
val compare_job : job -> job -> int

(** Latency-axis specifications: ["4"], ["2:6"], ["2:10:2"], ["3,5,7"]. *)
val parse_latencies : string -> (int list, string) result

val pp : Format.formatter -> t -> unit
