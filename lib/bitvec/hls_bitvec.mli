(** Arbitrary-width bit vectors with bit-true unsigned and two's-complement
    arithmetic.

    This module is the reference-semantics substrate of the reproduction:
    every behavioural transformation (kernel extraction, fragmentation, RTL
    generation) is validated by simulating both sides on [Hls_bitvec.t]
    values and comparing results bit by bit.

    Bit 0 is the least significant bit.  All operations are total over their
    stated widths; width mismatches raise [Invalid_argument]. *)

(** Word-packed (63-bits-per-word) index sets for the wavefront timing
    kernels — see {!Wordset}. *)
module Wordset : module type of Wordset

type t

(** {1 Construction} *)

(** [zero w] is the all-zeros vector of width [w] (w >= 1). *)
val zero : int -> t

(** [ones w] is the all-ones vector of width [w]. *)
val ones : int -> t

(** [of_int ~width v] truncates the two's-complement representation of [v]
    to [width] bits. *)
val of_int : width:int -> int -> t

(** [of_bits l] builds a vector from a list of bits, least significant
    first. *)
val of_bits : bool list -> t

(** [of_string s] parses a binary string written MSB-first,
    e.g. ["1010"] = 10. Underscores are ignored. *)
val of_string : string -> t

(** [init w f] is the vector whose bit [i] is [f i]. *)
val init : int -> (int -> bool) -> t

(** [random ~width prng] draws a uniformly random vector. *)
val random : width:int -> Hls_util.Prng.t -> t

(** {1 Observation} *)

val width : t -> int

(** [get t i] is bit [i]; raises [Invalid_argument] out of range. *)
val get : t -> int -> bool

(** Unsigned value; raises [Invalid_argument] if it does not fit in an
    OCaml [int]. *)
val to_int : t -> int

(** Two's-complement signed value; raises [Invalid_argument] if it does not
    fit in an OCaml [int]. *)
val to_signed_int : t -> int

(** Binary rendering, MSB first. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Lexicographic-by-value unsigned comparison of equal-width vectors. *)
val compare_unsigned : t -> t -> int

(** Two's-complement comparison of equal-width vectors. *)
val compare_signed : t -> t -> int

(** {1 Structure} *)

(** [slice t ~hi ~lo] is bits [lo..hi] inclusive (width [hi-lo+1]). *)
val slice : t -> hi:int -> lo:int -> t

(** [concat ~hi ~lo] places [hi] above [lo]: result width is the sum. *)
val concat : hi:t -> lo:t -> t

(** [zero_extend t ~width] pads with zeros up to [width]
    (no-op if already wider or equal... raises if [width < width t]). *)
val zero_extend : t -> width:int -> t

(** [sign_extend t ~width] replicates the MSB up to [width]. *)
val sign_extend : t -> width:int -> t

(** [truncate t ~width] keeps the low [width] bits. *)
val truncate : t -> width:int -> t

(** {1 Logic} *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(** [shift_left t n] shifts towards the MSB, dropping overflowing bits. *)
val shift_left : t -> int -> t

(** [shift_right_logical t n] shifts towards the LSB, filling with zeros. *)
val shift_right_logical : t -> int -> t

(** {1 Arithmetic}

    All arithmetic results carry explicit widths; the caller decides
    truncation/extension, mirroring hardware datapaths. *)

(** [add_full ~carry_in a b] adds equal-width vectors; the result is one bit
    wider (the MSB is the carry out). *)
val add_full : ?carry_in:bool -> t -> t -> t

(** [add a b] is modular addition at the operands' common width. *)
val add : t -> t -> t

(** [sub a b] is modular subtraction at the common width. *)
val sub : t -> t -> t

(** Two's-complement negation at the same width. *)
val neg : t -> t

(** [mul a b] is the full [width a + width b]-bit unsigned product. *)
val mul : t -> t -> t

(** [mul_signed a b] is the full-width two's-complement product. *)
val mul_signed : t -> t -> t

(** Unsigned [a < b]. *)
val lt_unsigned : t -> t -> bool

(** Signed [a < b]. *)
val lt_signed : t -> t -> bool

(** {1 Bit-serial evaluation}

    [ripple_add] exposes the carry chain explicitly; the fragmentation tests
    use it to model per-cycle partial sums with stored carries, exactly as
    the transformed specifications do. *)

(** [ripple_add ~carry_in a b] returns the sum bits (same width) and the
    carry out. *)
val ripple_add : carry_in:bool -> t -> t -> t * bool
