(* The word-packed (63-bits-per-word) index sets used by the wavefront
   timing kernels; re-exported so the library's main module stays the
   single entry point. *)
module Wordset = Wordset

type t = { width : int; bits : bool array }
(* bits.(i) is bit i (LSB first); the array length always equals [width]. *)

let check_width w =
  if w < 1 then invalid_arg "Hls_bitvec: width must be >= 1"

let zero w =
  check_width w;
  { width = w; bits = Array.make w false }

let ones w =
  check_width w;
  { width = w; bits = Array.make w true }

let init w f =
  check_width w;
  { width = w; bits = Array.init w f }

let of_int ~width v =
  check_width width;
  init width (fun i ->
      if i >= Sys.int_size - 1 then v < 0 else (v asr i) land 1 = 1)

let of_bits l =
  match l with
  | [] -> invalid_arg "Hls_bitvec.of_bits: empty list"
  | _ ->
      let a = Array.of_list l in
      { width = Array.length a; bits = a }

let of_string s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  if digits = [] then invalid_arg "Hls_bitvec.of_string: empty string";
  let w = List.length digits in
  let bits = Array.make w false in
  List.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> bits.(w - 1 - i) <- true
      | _ -> invalid_arg "Hls_bitvec.of_string: expected only 0/1/_")
    digits;
  { width = w; bits }

let random ~width prng =
  check_width width;
  init width (fun _ -> Hls_util.Prng.bool prng)

let width t = t.width

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Hls_bitvec.get: out of range";
  t.bits.(i)

let to_int t =
  if t.width > Sys.int_size - 1 then
    (* Only reject if a significant high bit is actually set. *)
    for i = Sys.int_size - 1 to t.width - 1 do
      if t.bits.(i) then invalid_arg "Hls_bitvec.to_int: value too wide"
    done;
  let hi = min t.width (Sys.int_size - 1) in
  let v = ref 0 in
  for i = hi - 1 downto 0 do
    v := (!v lsl 1) lor (if t.bits.(i) then 1 else 0)
  done;
  !v

let to_signed_int t =
  if not t.bits.(t.width - 1) then to_int t
  else begin
    if t.width > Sys.int_size - 1 then
      for i = Sys.int_size - 1 to t.width - 1 do
        if not t.bits.(i) then
          invalid_arg "Hls_bitvec.to_signed_int: value too wide"
      done;
    let hi = min t.width (Sys.int_size - 1) in
    (* Sign-extend within the OCaml int. *)
    let v = ref (-1) in
    for i = hi - 1 downto 0 do
      v := (!v lsl 1) lor (if t.bits.(i) then 1 else 0)
    done;
    !v
  end

let to_string t =
  String.init t.width (fun i ->
      if t.bits.(t.width - 1 - i) then '1' else '0')

let pp ppf t = Format.fprintf ppf "%db'%s" t.width (to_string t)
let equal a b = a.width = b.width && a.bits = b.bits

let check_same_width name a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Hls_bitvec.%s: width mismatch %d vs %d"
                   name a.width b.width)

let compare_unsigned a b =
  check_same_width "compare_unsigned" a b;
  let rec go i =
    if i < 0 then 0
    else if a.bits.(i) = b.bits.(i) then go (i - 1)
    else if a.bits.(i) then 1
    else -1
  in
  go (a.width - 1)

let compare_signed a b =
  check_same_width "compare_signed" a b;
  let sa = a.bits.(a.width - 1) and sb = b.bits.(b.width - 1) in
  if sa <> sb then (if sa then -1 else 1) else compare_unsigned a b

let slice t ~hi ~lo =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg "Hls_bitvec.slice: bad range";
  init (hi - lo + 1) (fun i -> t.bits.(lo + i))

let concat ~hi ~lo =
  init (hi.width + lo.width) (fun i ->
      if i < lo.width then lo.bits.(i) else hi.bits.(i - lo.width))

let zero_extend t ~width =
  if width < t.width then
    invalid_arg "Hls_bitvec.zero_extend: narrower target";
  init width (fun i -> i < t.width && t.bits.(i))

let sign_extend t ~width =
  if width < t.width then
    invalid_arg "Hls_bitvec.sign_extend: narrower target";
  let msb = t.bits.(t.width - 1) in
  init width (fun i -> if i < t.width then t.bits.(i) else msb)

let truncate t ~width =
  if width > t.width then invalid_arg "Hls_bitvec.truncate: wider target";
  init width (fun i -> t.bits.(i))

let lognot t = init t.width (fun i -> not t.bits.(i))

let map2 name f a b =
  check_same_width name a b;
  init a.width (fun i -> f a.bits.(i) b.bits.(i))

let logand = map2 "logand" ( && )
let logor = map2 "logor" ( || )
let logxor = map2 "logxor" ( <> )

let shift_left t n =
  if n < 0 then invalid_arg "Hls_bitvec.shift_left: negative shift";
  init t.width (fun i -> i >= n && t.bits.(i - n))

let shift_right_logical t n =
  if n < 0 then invalid_arg "Hls_bitvec.shift_right_logical: negative shift";
  init t.width (fun i -> i + n < t.width && t.bits.(i + n))

let ripple_add ~carry_in a b =
  check_same_width "ripple_add" a b;
  let sum = Array.make a.width false in
  let carry = ref carry_in in
  for i = 0 to a.width - 1 do
    let x = a.bits.(i) and y = b.bits.(i) and c = !carry in
    sum.(i) <- x <> y <> c;
    carry := (x && y) || (x && c) || (y && c)
  done;
  ({ width = a.width; bits = sum }, !carry)

let add_full ?(carry_in = false) a b =
  let sum, cout = ripple_add ~carry_in a b in
  concat ~hi:(of_bits [ cout ]) ~lo:sum

let add a b = fst (ripple_add ~carry_in:false a b)

let neg t =
  fst (ripple_add ~carry_in:true (lognot t) (zero t.width))

let sub a b =
  check_same_width "sub" a b;
  fst (ripple_add ~carry_in:true a (lognot b))

let mul a b =
  let w = a.width + b.width in
  let acc = ref (zero w) in
  let a_ext = zero_extend a ~width:w in
  for i = 0 to b.width - 1 do
    if b.bits.(i) then acc := add !acc (shift_left a_ext i)
  done;
  !acc

let mul_signed a b =
  let w = a.width + b.width in
  let acc = ref (zero w) in
  let a_ext = sign_extend a ~width:w in
  for i = 0 to b.width - 1 do
    if b.bits.(i) then begin
      let term = shift_left a_ext i in
      (* The MSB row of a two's-complement multiplier is subtracted. *)
      if i = b.width - 1 then acc := sub !acc term
      else acc := add !acc term
    end
  done;
  !acc

let lt_unsigned a b = compare_unsigned a b < 0
let lt_signed a b = compare_signed a b < 0
