(** Word-packed index sets: 63 members per OCaml int word.

    Dense membership sets over [0, len), built for the wavefront timing
    kernels: [next_set] / [next_unset] skip whole empty or full words one
    load at a time, so sweeping a frontier or finding the next unsettled
    index costs one word scan instead of a per-bit test.  Mutable and
    unsynchronized — confine a set to one domain. *)

type t

(** Members per word (63: an OCaml int minus the tag bit). *)
val bits_per_word : int

(** [create len] is the empty set over [0, len). *)
val create : int -> t

val length : t -> int

(** Number of backing words ([ceil (len / 63)]). *)
val words : t -> int

(** Index operations raise [Invalid_argument] outside [0, len). *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

(** Remove every member. *)
val clear : t -> unit

(** Add every index in [0, len). *)
val fill : t -> unit

val is_empty : t -> bool

(** Number of members. *)
val count : t -> int

(** [next_set t i] is the smallest member >= [i], or [-1]; empty words
    are skipped whole.  Words examined by the scan:
    [found / 63 - i / 63 + 1]. *)
val next_set : t -> int -> int

(** [next_unset t i] is the smallest non-member >= [i] (within [len]),
    or [-1]; full words are skipped whole. *)
val next_unset : t -> int -> int

(** Iterate the members in increasing order. *)
val iter : (int -> unit) -> t -> unit

val to_list : t -> int list
