(* Word-packed index sets: 63 members per OCaml int word.

   {!Hls_bitvec} proper is the reference-semantics substrate — a bit per
   array cell, optimized for clarity.  This module is the opposite end:
   dense membership sets over [0, len) packed 63 to a word, built for the
   wavefront kernels in [lib/timing] where the interesting operations are
   "find the next (un)settled index" and "sweep the members of a
   frontier" — both of which skip over full or empty words one load at a
   time instead of testing bit by bit. *)

let bits_per_word = 63

type t = {
  len : int;
  words : int array;  (** bit [i] lives at [words.(i / 63)], bit [i mod 63] *)
}

let n_words len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Wordset.create: negative length";
  { len; words = Array.make (n_words len) 0 }

let length t = t.len
let words t = Array.length t.words

(* All-ones pattern for a full word; the last word of a set whose length
   is not a multiple of 63 uses a truncated mask so [next_unset] never
   reports a phantom member past [len]. *)
let full_word = (1 lsl bits_per_word) - 1

let last_word_mask len =
  let r = len mod bits_per_word in
  if r = 0 then full_word else (1 lsl r) - 1

let check t i op =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Wordset.%s: index %d out of [0, %d)" op i t.len)

let mem t i =
  check t i "mem";
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i "add";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i "remove";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  let nw = Array.length t.words in
  if nw > 0 then begin
    Array.fill t.words 0 nw full_word;
    t.words.(nw - 1) <- last_word_mask t.len
  end

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let c = ref 0 and w = ref w in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr c
  done;
  !c

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

(* Index of the lowest set bit of a non-zero word. *)
let lowest_bit w =
  let rec go i = if w land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

(* [next_set t i] / [next_unset t i]: smallest member (resp. non-member)
   index >= [i], or [-1] when none remains.  Both first mask off the bits
   below [i] in the word holding it, then skip whole empty (resp. full)
   words — the word-at-a-time scan the wavefront kernels rely on.  The
   triple [(found, words_examined)] accounting lives with the caller:
   examined words = [found / 63 - i / 63 + 1]. *)
let next_set t i =
  if i >= t.len then -1
  else begin
    if i < 0 then invalid_arg "Wordset.next_set: negative index";
    let nw = Array.length t.words in
    let w0 = i / bits_per_word in
    let masked = t.words.(w0) land lnot ((1 lsl (i mod bits_per_word)) - 1) in
    if masked <> 0 then (w0 * bits_per_word) + lowest_bit masked
    else begin
      let w = ref (w0 + 1) in
      while !w < nw && t.words.(!w) = 0 do incr w done;
      if !w >= nw then -1
      else (!w * bits_per_word) + lowest_bit t.words.(!w)
    end
  end

let next_unset t i =
  if i >= t.len then -1
  else begin
    if i < 0 then invalid_arg "Wordset.next_unset: negative index";
    let nw = Array.length t.words in
    let word_mask w = if w = nw - 1 then last_word_mask t.len else full_word in
    let w0 = i / bits_per_word in
    let masked =
      (lnot t.words.(w0) land word_mask w0)
      land lnot ((1 lsl (i mod bits_per_word)) - 1)
    in
    if masked <> 0 then
      let j = (w0 * bits_per_word) + lowest_bit masked in
      if j < t.len then j else -1
    else begin
      let w = ref (w0 + 1) in
      while !w < nw && t.words.(!w) = word_mask !w do incr w done;
      if !w >= nw then -1
      else
        let j = (!w * bits_per_word) + lowest_bit (lnot t.words.(!w) land word_mask !w) in
        if j < t.len then j else -1
    end
  end

(* Iterate the members in increasing order, skipping empty words. *)
let iter f t =
  let i = ref (next_set t 0) in
  while !i >= 0 do
    f !i;
    i := if !i + 1 >= t.len then -1 else next_set t (!i + 1)
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
