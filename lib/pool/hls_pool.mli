(** Domain-based job pool with exception isolation, per-job timeouts and
    bounded retry.

    Jobs are independent thunks.  Without [timeout_s], [workers]
    persistent domains race down a shared job counter (domain creation is
    expensive next to a millisecond job, so spawning once per worker is
    what makes small sweeps scale).  With [timeout_s], each job gets a
    disposable domain: a job exceeding the deadline is recorded as
    [Timed_out] and its domain abandoned — OCaml cannot preempt a domain,
    so the stray computation runs on harmlessly until process exit while
    the sweep continues.  In both modes a raising job is recorded as
    [Failed] with its {!Hls_util.Failure} classification; the exception
    never escapes the pool. *)

type 'a outcome =
  | Done of 'a
  | Failed of Hls_util.Failure.t
      (** classified escaped exception ({!Hls_util.Failure.classify_exn}) *)
  | Timed_out of float  (** seconds the job had been running *)

(** Recommended domain count, clamped to [1..8]. *)
val default_workers : unit -> int

(** [run ?workers ?timeout_s jobs] — results are index-aligned with
    [jobs].  A given [timeout_s] is honoured whenever [workers > 1], even
    for a single job; with [workers <= 1] jobs run inline in the calling
    domain: still exception-isolated, but [timeout_s] is ignored (a
    timeout needs a second domain to observe it). *)
val run :
  ?workers:int -> ?timeout_s:float -> (unit -> 'a) array -> 'a outcome array

val run_list :
  ?workers:int -> ?timeout_s:float -> (unit -> 'a) list -> 'a outcome list

val outcome_ok : 'a outcome -> 'a option

(** The taxonomy view of a non-[Done] outcome ([Timed_out] becomes
    {!Hls_util.Failure.Timeout}). *)
val failure_of_outcome : 'a outcome -> Hls_util.Failure.t option

(** Human-readable reason for a non-[Done] outcome. *)
val outcome_error : 'a outcome -> string option

(** A persistent shared pool: domains are spawned once and live until
    {!Shared.shutdown}, so the serving path can run many small batches
    (e.g. per-request region-parallel timing jobs) without paying a
    domain spawn per call.  Batches may be submitted from different
    threads concurrently; each submitter blocks only until its own batch
    completes.  Jobs must not submit to the pool they run on. *)
module Shared : sig
  type t

  (** Spawn the worker domains ([workers] defaults to
      {!default_workers}; [workers <= 1] spawns none and runs batches
      inline in the submitter). *)
  val create : ?workers:int -> unit -> t

  val workers : t -> int

  (** Run one batch to completion.  [Error e] carries the first
      exception a job raised (the rest of the batch still runs). *)
  val run_list : t -> (unit -> unit) list -> (unit, exn) result

  (** Stop accepting work, drain what is queued, join the domains.
      Idempotent; after shutdown batches run inline. *)
  val shutdown : t -> unit
end

(** When and how to re-dispatch failed jobs. *)
module Retry_policy : sig
  type t = {
    attempts : int;  (** total tries per job, including the first *)
    backoff_s : float;  (** delay before the 2nd try; doubles per round *)
    max_backoff_s : float;
    jitter : float;  (** +/- fraction of the delay, deterministic *)
    retry_on : Hls_util.Failure.t -> bool;
  }

  (** One attempt, no retries: plain [run] semantics. *)
  val none : t

  (** Defaults: 3 attempts, 50 ms base doubling to at most 2 s, 25 %
      deterministic jitter, retrying exactly the
      {!Hls_util.Failure.retryable} classes (so [Infeasible] points fail
      fast). *)
  val make :
    ?attempts:int -> ?backoff_s:float -> ?max_backoff_s:float ->
    ?jitter:float -> ?retry_on:(Hls_util.Failure.t -> bool) -> unit -> t

  val should_retry : t -> attempt:int -> Hls_util.Failure.t -> bool

  (** Backoff before re-dispatching [job] after its [attempt]-th try:
      exponential in [attempt] with jitter drawn deterministically from
      (attempt, job), so reruns back off identically. *)
  val delay_s : t -> attempt:int -> job:int -> float
end

(** [run_retry ?workers ?timeout_s ?retry jobs]: round-based retry on top
    of {!run} — run everything, re-dispatch the failures the policy
    accepts after its backoff, repeat until done or exhausted.  Returns
    each job's final outcome and its attempt count (>= 1).  Job thunks are
    probed by {!Hls_util.Faults.on_job} under their original index, so
    injected faults track a job across retries. *)
val run_retry :
  ?workers:int -> ?timeout_s:float -> ?retry:Retry_policy.t ->
  (unit -> 'a) array -> ('a outcome * int) array
