(* A small Domain-based job pool with exception isolation, per-job
   timeouts and bounded retry.

   Two execution strategies share the same interface:

   - Without a timeout, [workers] persistent domains race down a shared
     Atomic job counter.  Domain creation is expensive relative to a
     millisecond scheduling job (thread spawn + runtime synchronization),
     so spawning once per worker rather than once per job is what makes
     small sweeps actually scale.  Each result slot is written by exactly
     one domain and read only after [Domain.join], which provides the
     happens-before edge.

   - With a timeout, each job gets its own disposable domain (at most
     [workers] in flight) and the coordinator polls completion cells: a
     job past its deadline is recorded as [Timed_out] and its domain
     abandoned — OCaml cannot preempt a domain, so the stray computation
     runs on harmlessly until process exit while its slot is released and
     the sweep moves on.  Per-job spawn cost is the price of being able
     to walk away from a diverging job.

   In both strategies exceptions are caught *inside* the worker domain
   and classified into the shared failure taxonomy, so one raising job
   can never take the sweep down and callers can tell a permanently
   [Infeasible] point from a retryable [Timeout]/[Internal] fault.  With
   [workers <= 1] and no timeout, jobs run inline in the calling domain
   (still exception-isolated); a requested timeout always routes through
   the deadline strategy, even for a single job. *)

module Failure = Hls_util.Failure
module Tm = Hls_telemetry

type 'a outcome = Done of 'a | Failed of Failure.t | Timed_out of float

let default_workers () = max 1 (min 8 (Domain.recommended_domain_count ()))

(* Wrap one job in a telemetry span carrying its stable index.  The
   armed check is hoisted out of [with_span] so the disabled path pays a
   single branch — no attribute list is ever allocated. *)
let traced_job i job =
  if Tm.armed () then
    Tm.with_span ~cat:"pool" ~attrs:[ ("job", Tm.Int i) ] "job" job
  else job ()

type 'a flight = {
  idx : int;
  cell : ('a, Failure.t) result option Atomic.t;
  domain : unit Domain.t;
  started : float;
}

let run_serial jobs results =
  Array.iteri
    (fun i job ->
      results.(i) <-
        (match traced_job i job with
        | v -> Done v
        | exception e -> Failed (Failure.classify_exn e)))
    jobs

let run_pooled ~workers jobs results =
  let n = Array.length jobs in
  let next = Atomic.make 0 in
  let nworkers = min workers n in
  (* Per-worker busy seconds, written only by worker [w] and read after
     the joins; feeds the pool.utilization gauge. *)
  let busy = Array.make nworkers 0. in
  let worker w () =
    if Tm.armed () then Tm.name_track (Printf.sprintf "worker %d" w);
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        if Tm.armed () then begin
          Tm.gauge "pool.queue_depth" (float_of_int (max 0 (n - i - 1)));
          let t0 = Unix.gettimeofday () in
          results.(i) <-
            (match traced_job i jobs.(i) with
            | v -> Done v
            | exception e -> Failed (Failure.classify_exn e));
          busy.(w) <- busy.(w) +. (Unix.gettimeofday () -. t0)
        end
        else
          results.(i) <-
            (match jobs.(i) () with
            | v -> Done v
            | exception e -> Failed (Failure.classify_exn e));
        loop ()
      end
    in
    loop ()
  in
  let t0 = Unix.gettimeofday () in
  let domains = List.init nworkers (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join domains;
  if Tm.armed () then begin
    let wall = Unix.gettimeofday () -. t0 in
    Tm.gauge "pool.workers" (float_of_int nworkers);
    if wall > 0. then
      Tm.gauge "pool.utilization"
        (Array.fold_left ( +. ) 0. busy /. (wall *. float_of_int nworkers))
  end

let run_with_deadline ~workers ~timeout_s jobs results =
  let n = Array.length jobs in
  let next = ref 0 in
  let in_flight = ref [] in
  (* Kept in sync with [in_flight] so the poll loop never pays an O(n)
     [List.length] per iteration. *)
  let in_flight_count = ref 0 in
  let spawn i =
    let cell = Atomic.make None in
    let domain =
      Domain.spawn (fun () ->
          if Tm.armed () then
            Tm.name_track (Printf.sprintf "job %d (deadline)" i);
          let r =
            match traced_job i jobs.(i) with
            | v -> Ok v
            | exception e -> Error (Failure.classify_exn e)
          in
          Atomic.set cell (Some r))
    in
    { idx = i; cell; domain; started = Unix.gettimeofday () }
  in
  let note_in_flight () =
    if Tm.armed () then
      Tm.gauge "pool.in_flight" (float_of_int !in_flight_count)
  in
  while !next < n || !in_flight <> [] do
    while !next < n && !in_flight_count < workers do
      in_flight := spawn !next :: !in_flight;
      incr in_flight_count;
      incr next
    done;
    note_in_flight ();
    let now = Unix.gettimeofday () in
    in_flight :=
      List.filter
        (fun f ->
          let retire outcome =
            results.(f.idx) <- outcome;
            decr in_flight_count;
            false
          in
          match Atomic.get f.cell with
          | Some (Ok v) ->
              Domain.join f.domain;
              retire (Done v)
          | Some (Error fl) ->
              Domain.join f.domain;
              retire (Failed fl)
          | None ->
              if now -. f.started > timeout_s then
                (* abandoned, see module comment *)
                retire (Timed_out (now -. f.started))
              else true)
        !in_flight;
    if !in_flight <> [] then Unix.sleepf 0.0002
  done

let not_run = Failed (Failure.Internal (Stdlib.Failure "job not run"))

let run ?workers ?timeout_s jobs =
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  let n = Array.length jobs in
  let results = Array.make n not_run in
  if n > 0 then begin
    match timeout_s with
    (* A timeout needs a second domain to observe it, so honour it
       whenever more than one domain was requested — even for a single
       job (a lone diverging job must not hang the sweep). *)
    | Some timeout_s when workers > 1 ->
        run_with_deadline ~workers ~timeout_s jobs results
    | Some _ | None ->
        if workers <= 1 || n = 1 then run_serial jobs results
        else run_pooled ~workers jobs results
  end;
  results

let run_list ?workers ?timeout_s jobs =
  Array.to_list (run ?workers ?timeout_s (Array.of_list jobs))

let outcome_ok = function Done v -> Some v | Failed _ | Timed_out _ -> None

let failure_of_outcome = function
  | Done _ -> None
  | Failed f -> Some f
  | Timed_out s -> Some (Failure.Timeout s)

let outcome_error o = Option.map Failure.to_string (failure_of_outcome o)

(* ------------------------------------------------------------------ *)
(* Persistent shared pool.                                             *)

module Shared = struct
  (* [run]/[run_pooled] spawn domains per call — fine for a sweep that
     amortizes the spawn over hundreds of jobs, wasteful for the serving
     path where every request wants a few millisecond region jobs.  A
     [Shared.t] spawns its domains once: workers block on a
     mutex/condvar queue, batches from any thread interleave, and each
     submitter waits only on its own batch's countdown.  Jobs must not
     submit to the pool they run on (the submitter holds no worker, so
     nested batches would deadlock once every domain is waiting). *)

  type batch = { mutable remaining : int; mutable failed : exn option }
  type job = { run : unit -> unit; batch : batch }

  type t = {
    mutex : Mutex.t;
    work : Condition.t;  (** a job or the stop flag became visible *)
    settled : Condition.t;  (** some batch hit zero remaining *)
    queue : job Queue.t;
    mutable stopping : bool;
    mutable domains : unit Domain.t list;
    n_workers : int;
  }

  let worker t w () =
    if Tm.armed () then Tm.name_track (Printf.sprintf "shared worker %d" w);
    let rec loop () =
      Mutex.lock t.mutex;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.work t.mutex
      done;
      if Queue.is_empty t.queue then Mutex.unlock t.mutex
      else begin
        let j = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        let failure = match j.run () with () -> None | exception e -> Some e in
        Mutex.lock t.mutex;
        (match failure with
        | Some e when j.batch.failed = None -> j.batch.failed <- Some e
        | _ -> ());
        j.batch.remaining <- j.batch.remaining - 1;
        if j.batch.remaining = 0 then Condition.broadcast t.settled;
        Mutex.unlock t.mutex;
        loop ()
      end
    in
    loop ()

  let create ?workers () =
    let n_workers =
      match workers with Some w -> max 1 w | None -> default_workers ()
    in
    let t =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        settled = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        domains = [];
        n_workers;
      }
    in
    if n_workers > 1 then
      t.domains <- List.init n_workers (fun w -> Domain.spawn (worker t w));
    t

  let workers t = t.n_workers

  let run_list t jobs =
    if t.domains = [] then
      (* Inline mode (1 worker, or after shutdown): same exception
         contract without touching the queue. *)
      let rec go = function
        | [] -> Ok ()
        | j :: rest -> ( match j () with () -> go rest | exception e -> Error e)
      in
      go jobs
    else begin
      let batch = { remaining = List.length jobs; failed = None } in
      if batch.remaining = 0 then Ok ()
      else begin
        Mutex.lock t.mutex;
        List.iter (fun run -> Queue.add { run; batch } t.queue) jobs;
        Condition.broadcast t.work;
        while batch.remaining > 0 do
          Condition.wait t.settled t.mutex
        done;
        Mutex.unlock t.mutex;
        match batch.failed with None -> Ok () | Some e -> Error e
      end
    end

  let shutdown t =
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
end

(* ------------------------------------------------------------------ *)
(* Retry with backoff.                                                 *)

module Retry_policy = struct
  type t = {
    attempts : int;  (** total tries per job, including the first *)
    backoff_s : float;  (** delay before the 2nd try; doubles per round *)
    max_backoff_s : float;
    jitter : float;  (** +/- fraction of the delay, deterministic *)
    retry_on : Failure.t -> bool;
  }

  let none =
    {
      attempts = 1;
      backoff_s = 0.;
      max_backoff_s = 0.;
      jitter = 0.;
      retry_on = (fun _ -> false);
    }

  let make ?(attempts = 3) ?(backoff_s = 0.05) ?(max_backoff_s = 2.0)
      ?(jitter = 0.25) ?(retry_on = Failure.retryable) () =
    if attempts < 1 then invalid_arg "Retry_policy.make: attempts must be >= 1";
    if backoff_s < 0. || max_backoff_s < 0. then
      invalid_arg "Retry_policy.make: negative backoff";
    if jitter < 0. || jitter > 1. then
      invalid_arg "Retry_policy.make: jitter must be in [0, 1]";
    { attempts; backoff_s; max_backoff_s; jitter; retry_on }

  let should_retry t ~attempt f = attempt < t.attempts && t.retry_on f

  (* Exponential backoff with deterministic jitter: the delay before
     re-dispatching [job] after its [attempt]-th try.  The jitter factor
     is drawn from a SplitMix stream seeded by (attempt, job), so reruns
     back off identically — reproducibility extends to the failure
     path. *)
  let delay_s t ~attempt ~job =
    if t.backoff_s <= 0. then 0.
    else
      let base =
        min t.max_backoff_s (t.backoff_s *. (2. ** float_of_int (attempt - 1)))
      in
      if t.jitter = 0. then base
      else
        let prng = Hls_util.Prng.create ~seed:((attempt * 8191) + job) in
        let u = float_of_int (Hls_util.Prng.int prng 10_000) /. 10_000. in
        base *. (1. -. t.jitter +. (2. *. t.jitter *. u))
end

(* Round-based retry: run everything, collect the retryable failures,
   back off, re-dispatch them as the next round's batch.  Results stay
   index-aligned; the attempt count per job rides along.  Each job thunk
   is wrapped with the {!Hls_util.Faults} probe under its *original*
   index, so injected faults track a job across retries. *)
let run_retry ?workers ?timeout_s ?(retry = Retry_policy.none) jobs =
  let n = Array.length jobs in
  let wrapped =
    Array.mapi
      (fun i job () ->
        Hls_util.Faults.on_job i;
        job ())
      jobs
  in
  let results = Array.make n not_run in
  let attempts = Array.make n 0 in
  let pending = ref (List.init n Fun.id) in
  let round = ref 0 in
  while !pending <> [] do
    incr round;
    let idxs = Array.of_list !pending in
    let batch = Array.map (fun i -> wrapped.(i)) idxs in
    let out = run ?workers ?timeout_s batch in
    let again = ref [] in
    Array.iteri
      (fun k o ->
        let i = idxs.(k) in
        attempts.(i) <- attempts.(i) + 1;
        results.(i) <- o;
        match failure_of_outcome o with
        | Some f when Retry_policy.should_retry retry ~attempt:!round f ->
            again := i :: !again
        | Some _ | None -> ())
      out;
    pending := List.rev !again;
    if !pending <> [] then begin
      let delay =
        List.fold_left
          (fun acc i ->
            Float.max acc (Retry_policy.delay_s retry ~attempt:!round ~job:i))
          0. !pending
      in
      if Tm.armed () then begin
        Tm.count ~n:(List.length !pending) "pool.retries";
        Tm.event "retry-round"
          ~attrs:
            [
              ("round", Tm.Int !round);
              ("pending", Tm.Int (List.length !pending));
              ("backoff_s", Tm.Float delay);
            ]
      end;
      if delay > 0. then Unix.sleepf delay
    end
  done;
  Array.map2 (fun o a -> (o, a)) results attempts
