(** The dataflow graph: nodes in topological order plus port bindings.

    Node ids are dense and every operand references a strictly smaller id,
    so iteration order is a topological order and the graph is acyclic by
    construction (enforced by {!Builder} and re-checked by {!validate}). *)

open Types

type index = {
  uses : (node * operand) list array;
      (** per producer id: every (consumer node, operand) reading it, in
          node order (operands in declaration order within a node) *)
  out_uses : (string * operand) list array;
      (** per producer id: the output ports it drives *)
}

type t = {
  name : string;
  inputs : port list;
  outputs : (string * operand) list;
      (** each output port is driven by one operand *)
  nodes : node array;  (** index = node id; topological by construction *)
  cached_index : index option Atomic.t;
      (** lazily built reverse adjacency; initialize to [Atomic.make None] *)
}

val name : t -> string
val node_count : t -> int

(** [node t id]: raises [Invalid_argument] for an unknown id. *)
val node : t -> node_id -> node

val nodes : t -> node list
val iter_nodes : (node -> unit) -> t -> unit
val fold_nodes : ('a -> node -> 'a) -> 'a -> t -> 'a
val find_input : t -> string -> port option
val input_exn : t -> string -> port

(** Width of whatever an operand source produces. *)
val source_width : t -> source -> int

(** Build the reverse adjacency (consumer index) in one O(V+E) pass. *)
val build_index : t -> index

(** The memoized reverse adjacency of the graph: built on first use, then
    O(1) per query.  Callers making many consumer queries should grab the
    index once and read its arrays directly. *)
val index : t -> index

(** All (consumer node, operand) pairs reading from node [id] (via the
    memoized {!index}). *)
val consumers : t -> node_id -> (node * operand) list

(** Output ports (name, operand) driven by node [id]. *)
val output_consumers : t -> node_id -> (string * operand) list

(** No node or output reads this node's value. *)
val is_dead : t -> node_id -> bool

(** Number of behavioural (additive-kernel) operations — the paper's
    "operations" count. *)
val behavioural_op_count : t -> int

val count_kind : t -> kind -> int

(** Total adder result bits: a structural proxy used by tests. *)
val total_add_bits : t -> int

exception Invalid of string

(** Structural validation: ids dense and ordered, operand references
    legal, arities and widths consistent.  Raises {!Invalid}. *)
val validate : t -> unit

val validate_result : t -> (unit, string) result
val pp_node : t -> Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
