(** The dataflow graph: nodes in topological order plus port bindings. *)

open Types

type index = {
  uses : (node * operand) list array;
      (** per producer id: every (consumer node, operand) reading it, in
          node order (operands in declaration order within a node) *)
  out_uses : (string * operand) list array;
      (** per producer id: the output ports it drives *)
}

type t = {
  name : string;
  inputs : port list;
  outputs : (string * operand) list;
      (** each output port is driven by one operand *)
  nodes : node array;  (** index = node id; topological by construction *)
  cached_index : index option Atomic.t;
      (** lazily built reverse adjacency; the atomic makes concurrent
          builds from parallel sweep domains race-free (worst case both
          build, one wins) *)
}

let name t = t.name
let node_count t = Array.length t.nodes

let node t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Graph.node: no node %d in %s" id t.name);
  t.nodes.(id)

let nodes t = Array.to_list t.nodes
let iter_nodes f t = Array.iter f t.nodes
let fold_nodes f acc t = Array.fold_left f acc t.nodes

let find_input t name =
  List.find_opt (fun p -> String.equal p.port_name name) t.inputs

let input_exn t n =
  match find_input t n with
  | Some p -> p
  | None ->
      invalid_arg (Printf.sprintf "Graph.input_exn: no input %s in %s" n t.name)

(** Width of whatever an operand source produces. *)
let source_width t = function
  | Input n -> (input_exn t n).port_width
  | Node id -> (node t id).width
  | Const bv -> Hls_bitvec.width bv

(** Build the reverse adjacency in one O(V+E) pass: for every producer,
    the (consumer, operand) pairs reading it — same order as the old
    whole-graph scan produced (consumers by ascending id, operands in
    declaration order). *)
let build_index t =
  let n = Array.length t.nodes in
  let uses = Array.make n [] in
  let out_uses = Array.make n [] in
  Array.iter
    (fun (consumer : node) ->
      List.iter
        (fun o ->
          match o.src with
          | Node i -> uses.(i) <- (consumer, o) :: uses.(i)
          | Input _ | Const _ -> ())
        consumer.operands)
    t.nodes;
  List.iter
    (fun (name, (o : operand)) ->
      match o.src with
      | Node i -> out_uses.(i) <- (name, o) :: out_uses.(i)
      | Input _ | Const _ -> ())
    t.outputs;
  {
    uses = Array.map List.rev uses;
    out_uses = Array.map List.rev out_uses;
  }

(** The memoized reverse adjacency of the graph (built on first use). *)
let index t =
  match Atomic.get t.cached_index with
  | Some idx -> idx
  | None ->
      let idx = build_index t in
      Atomic.set t.cached_index (Some idx);
      idx

(** All (consumer node, operand) pairs reading from node [id]. *)
let consumers t id = (index t).uses.(id)

(** Output ports (name, operand) driven by node [id]. *)
let output_consumers t id = (index t).out_uses.(id)

let is_dead t id =
  let idx = index t in
  idx.uses.(id) = [] && idx.out_uses.(id) = []

(** Number of behavioural operations (the paper's "operations" count used in
    the +34 % / +30 % observations): nodes whose kind is additive. *)
let behavioural_op_count t =
  fold_nodes (fun acc n -> if is_additive n.kind then acc + 1 else acc) 0 t

let count_kind t k =
  fold_nodes (fun acc n -> if n.kind = k then acc + 1 else acc) 0 t

(** Total adder result bits in the graph — a quick structural proxy used by
    tests (the real area model lives in {!Hls_alloc}). *)
let total_add_bits t =
  fold_nodes (fun acc n -> if n.kind = Add then acc + n.width else acc) 0 t

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let check_operand t ~consumer (o : operand) =
  if o.lo < 0 || o.hi < o.lo then
    invalid "node %d: operand %a has a bad bit range" consumer.id Operand.pp o;
  (match o.src with
  | Node id ->
      if id < 0 || id >= Array.length t.nodes then
        invalid "node %d reads undefined node %d" consumer.id id;
      if id >= consumer.id then
        invalid "node %d reads node %d, breaking topological order"
          consumer.id id
  | Input n ->
      if find_input t n = None then
        invalid "node %d reads undefined input %s" consumer.id n
  | Const _ -> ());
  let sw = source_width t o.src in
  if o.hi >= sw then
    invalid "node %d: operand %a exceeds source width %d" consumer.id
      Operand.pp o sw

let check_arity n ~expected =
  let got = List.length n.operands in
  if not (List.mem got expected) then
    invalid "node %d (%s): arity %d not allowed" n.id (kind_to_string n.kind)
      got

let check_node t n =
  if n.width < 1 then invalid "node %d: width must be >= 1" n.id;
  List.iter (check_operand t ~consumer:n) n.operands;
  let operand_width i = Operand.width (List.nth n.operands i) in
  (match n.kind with
  | Add ->
      check_arity n ~expected:[ 2; 3 ];
      if List.length n.operands = 3 && operand_width 2 <> 1 then
        invalid "node %d: carry-in operand must be 1 bit" n.id
  | Sub | Mul | Max | Min | And | Or | Xor -> check_arity n ~expected:[ 2 ]
  | Lt | Le | Gt | Ge | Eq | Neq ->
      check_arity n ~expected:[ 2 ];
      if n.width <> 1 then
        invalid "node %d: comparison result must be 1 bit" n.id
  | Neg | Not | Wire -> check_arity n ~expected:[ 1 ]
  | Reduce_or ->
      check_arity n ~expected:[ 1 ];
      if n.width <> 1 then
        invalid "node %d: reduce_or result must be 1 bit" n.id
  | Gate ->
      check_arity n ~expected:[ 2 ];
      if operand_width 1 <> 1 then
        invalid "node %d: gate control must be 1 bit" n.id
  | Mux ->
      check_arity n ~expected:[ 3 ];
      if operand_width 0 <> 1 then
        invalid "node %d: mux select must be 1 bit" n.id
  | Concat ->
      if n.operands = [] then invalid "node %d: empty concat" n.id;
      let sum = Hls_util.List_ext.sum_by Operand.width n.operands in
      if sum <> n.width then
        invalid "node %d: concat operand widths sum to %d, width is %d" n.id
          sum n.width);
  match n.origin with
  | Some o when o.orig_lo < 0 || o.orig_hi < o.orig_lo ->
      invalid "node %d: bad origin bit range" n.id
  | _ -> ()

(** Structural validation: ids dense and ordered, operand references legal,
    arities and widths consistent.  Raises [Invalid]. *)
let validate t =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if p.port_width < 1 then invalid "input %s: width must be >= 1" p.port_name;
      if Hashtbl.mem seen p.port_name then
        invalid "duplicate input port %s" p.port_name;
      Hashtbl.add seen p.port_name ())
    t.inputs;
  Array.iteri
    (fun i n -> if n.id <> i then invalid "node %d stored at index %d" n.id i)
    t.nodes;
  Array.iter (check_node t) t.nodes;
  let out_seen = Hashtbl.create 16 in
  List.iter
    (fun (name, o) ->
      if Hashtbl.mem out_seen name then invalid "duplicate output port %s" name;
      Hashtbl.add out_seen name ();
      if o.lo < 0 || o.hi < o.lo then
        invalid "output %s has a bad bit range" name;
      let sw = source_width t o.src in
      if o.hi >= sw then
        invalid "output %s exceeds source width %d" name sw)
    t.outputs

let validate_result t =
  match validate t with () -> Ok () | exception Invalid m -> Error m

let pp_node t ppf (n : node) =
  ignore t;
  Format.fprintf ppf "n%d%s: %s/%d %s <- %a" n.id
    (if n.label = "" then "" else Printf.sprintf "(%s)" n.label)
    (kind_to_string n.kind) n.width
    (match n.signedness with Unsigned -> "u" | Signed -> "s")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Operand.pp)
    n.operands

let pp ppf t =
  Format.fprintf ppf "@[<v>graph %s@ inputs: %a@ " t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf p -> Format.fprintf ppf "%s/%d" p.port_name p.port_width))
    t.inputs;
  Array.iter (fun n -> Format.fprintf ppf "%a@ " (pp_node t) n) t.nodes;
  Format.fprintf ppf "outputs: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (name, o) -> Format.fprintf ppf "%s <- %a" name Operand.pp o))
    t.outputs
