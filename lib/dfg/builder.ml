(** Imperative graph builder.

    Nodes receive consecutive ids in creation order and operands may only
    reference already-created nodes, so the finished graph is topologically
    sorted by construction.  [finish] validates the result. *)

open Types

type t = {
  graph_name : string;
  mutable inputs : port list;  (* reversed *)
  mutable outputs : (string * operand) list;  (* reversed *)
  mutable rev_nodes : node list;
  mutable next_id : int;
}

let create ~name =
  { graph_name = name; inputs = []; outputs = []; rev_nodes = []; next_id = 0 }

(** Declare a primary input port and return a full-range operand over it. *)
let input ?(signed = Unsigned) t name ~width =
  if width < 1 then invalid_arg "Builder.input: width must be >= 1";
  if List.exists (fun p -> String.equal p.port_name name) t.inputs then
    invalid_arg (Printf.sprintf "Builder.input: duplicate port %s" name);
  let p = { port_name = name; port_width = width; port_signed = signed } in
  t.inputs <- p :: t.inputs;
  Operand.of_input ?ext:(if signed = Signed then Some Sext else None) p

(** Create a node and return a full-range operand over its result. *)
let node ?(signedness = Unsigned) ?(label = "") ?origin t kind ~width operands
    =
  let n =
    { id = t.next_id; kind; signedness; width; operands; label; origin }
  in
  t.rev_nodes <- n :: t.rev_nodes;
  t.next_id <- t.next_id + 1;
  {
    src = Node n.id;
    hi = width - 1;
    lo = 0;
    ext = (if signedness = Signed then Sext else Zext);
  }

(** Bind an output port to an operand. *)
let output t name operand =
  if List.mem_assoc name t.outputs then
    invalid_arg (Printf.sprintf "Builder.output: duplicate port %s" name);
  t.outputs <- (name, operand) :: t.outputs

(** The id an operand refers to; raises on inputs/constants. *)
let node_id_of operand =
  match operand.src with
  | Node id -> id
  | Input _ | Const _ -> invalid_arg "Builder.node_id_of: not a node operand"

(** {1 Convenience constructors for behavioural specs} *)

let add ?signedness ?label t ~width a b = node ?signedness ?label t Add ~width [ a; b ]

let add_cin ?signedness ?label t ~width a b cin =
  node ?signedness ?label t Add ~width [ a; b; cin ]

let sub ?signedness ?label t ~width a b = node ?signedness ?label t Sub ~width [ a; b ]
let mul ?signedness ?label t ~width a b = node ?signedness ?label t Mul ~width [ a; b ]
let lt ?signedness ?label t a b = node ?signedness ?label t Lt ~width:1 [ a; b ]
let max_ ?signedness ?label t ~width a b = node ?signedness ?label t Max ~width [ a; b ]
let min_ ?signedness ?label t ~width a b = node ?signedness ?label t Min ~width [ a; b ]

let finish t =
  let g =
    {
      Graph.name = t.graph_name;
      inputs = List.rev t.inputs;
      outputs = List.rev t.outputs;
      nodes = Array.of_list (List.rev t.rev_nodes);
      cached_index = Atomic.make None;
    }
  in
  Graph.validate g;
  g
