(** Fragment selection (paper §3.3).

    For every addition of the kernel-form graph, each result bit gets a
    (bit-level ASAP cycle, bit-level ALAP cycle) pair under the chaining
    budget estimated in §3.2.  An operation is broken at every change of
    that pair: the fragments are the maximal runs of bits sharing one pair,
    so every fragment of an operation has a different mobility and no
    fragment's mobility is narrower than the bits' own (the paper breaks
    mobile operations precisely "to avoid any reduction in their
    mobilities").

    A fragment whose ASAP and ALAP cycles coincide is already scheduled;
    the rest are placed by the conventional scheduler. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module Arrival = Hls_timing.Arrival
module Deadline = Hls_timing.Deadline
module Bitnet = Hls_timing.Bitnet
module Critical_path = Hls_timing.Critical_path

type frag = {
  f_lo : int;  (** lowest original result bit of the fragment *)
  f_hi : int;
  f_asap : int;  (** earliest cycle (1-based) *)
  f_alap : int;  (** latest cycle *)
}

let frag_width f = f.f_hi - f.f_lo + 1
let is_fixed f = f.f_asap = f.f_alap

type plan = {
  latency : int;
  n_bits : int;  (** chaining budget: 1-bit additions per cycle *)
  critical : int;  (** critical path of the graph in δ *)
  per_node : frag list array;
      (** fragments per node id; [[]] for glue nodes *)
}

(** Fragmentation policies.

    - [`Full] is the paper's algorithm: one fragment per distinct
      (ASAP, ALAP) pair, so no bit loses any mobility.
    - [`Coalesced] is an ablation: adjacent fragments are merged while
      their windows still intersect and the merged fragment's δ-costly
      width fits the cycle budget.  Fewer, larger fragments mean less
      operand steering (muxes/control) at the price of scheduling freedom
      — the bench quantifies the trade. *)
type policy = [ `Full | `Coalesced ]

let node_fragments arr dl ~n_bits (n : node) =
  let pairs =
    List.map
      (fun bit ->
        ( Arrival.asap_cycle arr ~n_bits ~id:n.id ~bit,
          Deadline.alap_cycle dl ~n_bits ~id:n.id ~bit ))
      (Hls_util.List_ext.range 0 n.width)
  in
  let runs = Hls_util.List_ext.group_runs ~eq:( = ) pairs in
  let _, frags =
    List.fold_left
      (fun (lo, acc) run ->
        let width = List.length run in
        let asap, alap = List.hd run in
        ( lo + width,
          { f_lo = lo; f_hi = lo + width - 1; f_asap = asap; f_alap = alap }
          :: acc ))
      (0, []) runs
  in
  List.rev frags

(* Merge adjacent fragments while the windows intersect, the merged
   costly width fits one cycle, and — slot-level check — some cycle of the
   merged window can hold the whole ripple between every bit's arrival and
   deadline.  Without the slot check a merge can force a fragment and its
   same-cycle consumer to chain past the budget.  Costly-width queries are
   O(1) on the net's prefix sums. *)
let coalesce arr dl net ~n_bits (n : node) frags =
  let merge a b =
    let asap = max a.f_asap b.f_asap and alap = min a.f_alap b.f_alap in
    if asap > alap then None
    else
      let candidate =
        { f_lo = a.f_lo; f_hi = b.f_hi; f_asap = asap; f_alap = alap }
      in
      if
        Bitnet.costly_in_range net ~id:n.id ~lo:candidate.f_lo
          ~hi:candidate.f_hi
        > n_bits
      then None
      else
        let feasible_at c =
          let ok = ref true in
          let k = ref 0 in
          for bit = candidate.f_lo to candidate.f_hi do
            if Bitnet.cost_of net ~id:n.id ~bit > 0 then incr k;
            let slot = ((c - 1) * n_bits) + max 1 !k in
            if
              Arrival.slot arr ~id:n.id ~bit > slot
              || Deadline.slot dl ~id:n.id ~bit < slot
            then ok := false
          done;
          !ok
        in
        if
          List.exists feasible_at
            (Hls_util.List_ext.range asap (alap + 1))
        then Some candidate
        else None
  in
  let rec go acc = function
    | [] -> List.rev acc
    | f :: rest -> (
        match acc with
        | prev :: acc_tl -> (
            match merge prev f with
            | Some m -> go (m :: acc_tl) rest
            | None -> go (f :: acc) rest)
        | [] -> go [ f ] rest)
  in
  go [] frags

(** The literal fragmentation pseudocode printed in the paper (§3.3):
    distribute the operation's bits over its cycle window — [n_bits] per
    cycle forward from ASAP for the earliest distribution, backward from
    ALAP for the latest — then pair the two distributions off; each pairing
    step yields one fragment whose window is the (ASAP cycle, ALAP cycle)
    of the bits consumed.

    The paper's loop assumes the bits distribute uniformly, which holds for
    operations whose operands are ready at cycle starts; the bit-level
    engine ({!compute}) generalizes it to chained operands, truncation and
    free carry columns.  The test-suite checks that on uniform operations
    the two constructions agree. *)
let paper_fragments ~width ~n_bits ~asap ~alap =
  if width < 1 || n_bits < 1 || asap < 1 || alap < asap then
    invalid_arg "Mobility.paper_fragments: bad arguments";
  let cycles = alap + 1 in
  let sched_asap = Array.make cycles 0 in
  let sched_alap = Array.make cycles 0 in
  (* First loop: spread the bits n_bits at a time, forward from ASAP and
     backward from ALAP. *)
  let w = ref width and i = ref asap and j = ref alap in
  while !w > 0 do
    if !i > alap || !j < asap then
      invalid_arg
        "Mobility.paper_fragments: window too small for the operation";
    let chunk = min !w n_bits in
    sched_asap.(!i) <- chunk;
    sched_alap.(!j) <- chunk;
    w := !w - n_bits;
    incr i;
    decr j
  done;
  (* Second loop: pair the distributions; each minimum is a fragment. *)
  let frags = ref [] in
  let lo = ref 0 in
  let i = ref asap and j = ref asap in
  let remaining = ref width in
  while !remaining > 0 do
    while !i <= alap && sched_asap.(!i) = 0 do incr i done;
    while !j <= alap && sched_alap.(!j) = 0 do incr j done;
    if !i > alap || !j > alap then remaining := 0
    else begin
      let m = min sched_asap.(!i) sched_alap.(!j) in
      sched_asap.(!i) <- sched_asap.(!i) - m;
      sched_alap.(!j) <- sched_alap.(!j) - m;
      frags :=
        { f_lo = !lo; f_hi = !lo + m - 1; f_asap = !i; f_alap = !j }
        :: !frags;
      lo := !lo + m;
      remaining := !remaining - m
    end
  done;
  List.rev !frags

let check_kernel_form graph =
  if
    not
      (Graph.fold_nodes
         (fun acc n -> acc && (n.kind = Add || is_glue n.kind))
         true graph)
  then
    invalid_arg
      "Mobility.compute: graph must be in additive kernel form (run \
       operative kernel extraction first)"

let resolve_n_bits ~critical ~latency = function
  | Some n when n >= 1 -> n
  | Some _ -> invalid_arg "Mobility.compute: n_bits must be >= 1"
  | None -> Critical_path.cycle_delta_for_latency ~critical ~latency

(* The stable marker [infeasibility_of_exn] recognizes; both must change
   together. *)
let infeasible_prefix = "Mobility.compute: infeasible point: "

let infeasible_error ~latency ~n_bits ~critical ~witness =
  let where =
    match witness with
    | Some (id, bit) -> Printf.sprintf " (first violated: node %d bit %d)" id bit
    | None -> ""
  in
  invalid_arg
    (Printf.sprintf
       "%s%d cycles of %d bits cannot cover a %d-delta critical path%s"
       infeasible_prefix latency n_bits critical where)

(** Recognize this module's own infeasibility error: [Some message] when
    [exn] is the [Invalid_argument] raised for a budget that cannot cover
    the critical path (with the witness when one is known), [None] for
    every other exception — including this module's caller-error
    [Invalid_argument]s, which are bugs rather than infeasible points.
    Feeds the {!Hls_util.Failure} taxonomy without leaking the message
    format to other layers. *)
let infeasibility_of_exn = function
  | Invalid_argument m
    when String.length m >= String.length infeasible_prefix
         && String.sub m 0 (String.length infeasible_prefix)
            = infeasible_prefix ->
      Some m
  | _ -> None

(** Compute the fragmentation plan for scheduling [graph] — which must be
    in additive kernel form — over [latency] cycles.  [n_bits] defaults to
    the §3.2 estimate [ceil(critical / latency)].  [net] and [arrival], if
    given, must belong to [graph]; passing them lets a latency sweep build
    both once and share them across every candidate latency. *)
let compute ?n_bits ?(policy = `Full) ?net ?arrival graph ~latency =
  if latency < 1 then invalid_arg "Mobility.compute: latency must be >= 1";
  check_kernel_form graph;
  let net =
    match net with
    | Some (net : Bitnet.t) ->
        if net.Bitnet.graph != graph then
          invalid_arg "Mobility.compute: net belongs to a different graph";
        net
    | None -> Bitnet.build graph
  in
  let arr = match arrival with Some a -> a | None -> Arrival.of_net net in
  let critical = Arrival.critical_delta arr in
  let n_bits = resolve_n_bits ~critical ~latency n_bits in
  (* The early-exit kernel validates each level as it becomes final, so
     an infeasible budget bails after a fraction of the reverse sweep —
     and an [Ok] already proves feasibility, no separate witness scan. *)
  let dl =
    match
      Deadline.of_net_check net ~total_slots:(latency * n_bits) ~arrival:arr
    with
    | Ok dl -> dl
    | Error w ->
        infeasible_error ~latency ~n_bits ~critical ~witness:(Some w)
  in
  let per_node =
    Array.init (Graph.node_count graph) (fun id ->
        let n = Graph.node graph id in
        match n.kind with
        | Add -> (
            let frags = node_fragments arr dl ~n_bits n in
            match policy with
            | `Full -> frags
            | `Coalesced -> coalesce arr dl net ~n_bits n frags)
        | _ -> [])
  in
  { latency; n_bits; critical; per_node }

(* List-based δ-costly width of a fragment, for the reference path. *)
let costly_width_reference graph (n : node) f =
  List.length
    (List.filter
       (fun pos -> fst (Hls_timing.Bitdep.bit_deps graph n pos) > 0)
       (Hls_util.List_ext.range f.f_lo (f.f_hi + 1)))

let coalesce_reference arr dl graph ~n_bits (n : node) frags =
  let merge a b =
    let asap = max a.f_asap b.f_asap and alap = min a.f_alap b.f_alap in
    if asap > alap then None
    else
      let candidate =
        { f_lo = a.f_lo; f_hi = b.f_hi; f_asap = asap; f_alap = alap }
      in
      if costly_width_reference graph n candidate > n_bits then None
      else
        let feasible_at c =
          let ok = ref true in
          let k = ref 0 in
          for bit = candidate.f_lo to candidate.f_hi do
            let cost, _ = Hls_timing.Bitdep.bit_deps graph n bit in
            if cost > 0 then incr k;
            let slot = ((c - 1) * n_bits) + max 1 !k in
            if
              Arrival.slot arr ~id:n.id ~bit > slot
              || Deadline.slot dl ~id:n.id ~bit < slot
            then ok := false
          done;
          !ok
        in
        if
          List.exists feasible_at
            (Hls_util.List_ext.range asap (alap + 1))
        then Some candidate
        else None
  in
  let rec go acc = function
    | [] -> List.rev acc
    | f :: rest -> (
        match acc with
        | prev :: acc_tl -> (
            match merge prev f with
            | Some m -> go (m :: acc_tl) rest
            | None -> go (f :: acc) rest)
        | [] -> go [ f ] rest)
  in
  go [] frags

(** Per-query {!Bitdep.bit_deps} evaluation throughout: the executable
    reference for property tests and benchmark baselines.  Produces the
    same plan as {!compute}. *)
let compute_reference ?n_bits ?(policy = `Full) graph ~latency =
  if latency < 1 then invalid_arg "Mobility.compute: latency must be >= 1";
  check_kernel_form graph;
  let arr = Arrival.compute_reference graph in
  let critical = Arrival.critical_delta arr in
  let n_bits = resolve_n_bits ~critical ~latency n_bits in
  let dl = Deadline.compute_reference graph ~total_slots:(latency * n_bits) in
  if not (Deadline.feasible arr dl) then
    infeasible_error ~latency ~n_bits ~critical ~witness:None;
  let per_node =
    Array.init (Graph.node_count graph) (fun id ->
        let n = Graph.node graph id in
        match n.kind with
        | Add -> (
            let frags = node_fragments arr dl ~n_bits n in
            match policy with
            | `Full -> frags
            | `Coalesced -> coalesce_reference arr dl graph ~n_bits n frags)
        | _ -> [])
  in
  { latency; n_bits; critical; per_node }

(** Number of additive operations after fragmentation. *)
let fragment_count plan =
  Array.fold_left (fun acc frags -> acc + List.length frags) 0 plan.per_node

(** Additions that must be broken up (more than one fragment). *)
let broken_op_count plan =
  Array.fold_left
    (fun acc frags -> if List.length frags > 1 then acc + 1 else acc)
    0 plan.per_node

let pp_frag ppf f =
  Format.fprintf ppf "[%d:%d]@(%d..%d)" f.f_hi f.f_lo f.f_asap f.f_alap

let pp ppf plan =
  Format.fprintf ppf "@[<v>plan: latency %d, cycle %d bits, critical %d delta@ "
    plan.latency plan.n_bits plan.critical;
  Array.iteri
    (fun id frags ->
      if frags <> [] then
        Format.fprintf ppf "n%d: %a@ " id
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
             pp_frag)
          frags)
    plan.per_node;
  Format.fprintf ppf "@]"
