(** Fragment selection (paper §3.3): per-bit (ASAP, ALAP) cycle pairs under
    the §3.2 chaining budget, grouped into maximal runs — the fragments. *)

type frag = {
  f_lo : int;  (** lowest original result bit of the fragment *)
  f_hi : int;
  f_asap : int;  (** earliest cycle (1-based) *)
  f_alap : int;  (** latest cycle *)
}

val frag_width : frag -> int

(** ASAP = ALAP: the fragment is already scheduled. *)
val is_fixed : frag -> bool

type plan = {
  latency : int;
  n_bits : int;  (** chaining budget: 1-bit additions per cycle *)
  critical : int;  (** critical path of the graph in δ *)
  per_node : frag list array;
      (** fragments per node id; [[]] for glue nodes *)
}

(** Fragmentation policies.

    - [`Full] is the paper's algorithm: one fragment per distinct
      (ASAP, ALAP) pair, so no bit loses any mobility.
    - [`Coalesced] is an ablation: adjacent fragments are merged while
      their windows still intersect, the merged δ-costly width fits the
      cycle budget, and a slot-level check finds a cycle that can hold the
      merged ripple.  Fewer, larger fragments mean less operand steering at
      the price of scheduling freedom; aggressive merging can make the
      whole schedule infeasible (the scheduler reports it). *)
type policy = [ `Full | `Coalesced ]

(** The literal fragmentation pseudocode printed in the paper (§3.3),
    for one operation with a uniform bit distribution: [width] bits spread
    [n_bits] per cycle over the window [asap..alap], fragments from pairing
    the earliest and latest distributions.  The bit-level {!compute}
    generalizes this; tests check agreement on uniform operations. *)
val paper_fragments :
  width:int -> n_bits:int -> asap:int -> alap:int -> frag list

(** Compute the fragmentation plan for scheduling [graph] — which must be
    in additive kernel form — over [latency] cycles.  [n_bits] defaults to
    the §3.2 estimate [ceil(critical / latency)].  [net] and [arrival], if
    given, must belong to [graph]; passing them lets a latency sweep build
    both once and share them across every candidate latency.  Raises
    [Invalid_argument] on non-kernel-form graphs or infeasible budgets
    (naming the first violated bit when one is known). *)
val compute :
  ?n_bits:int -> ?policy:policy -> ?net:Hls_timing.Bitnet.t ->
  ?arrival:Hls_timing.Arrival.t -> Hls_dfg.Graph.t -> latency:int -> plan

(** Recognize this module's infeasibility error: [Some message] when the
    exception is the [Invalid_argument] {!compute} raises for a budget that
    cannot cover the critical path, [None] otherwise (caller errors
    included).  Lets {!Hls_util.Failure} classifiers treat infeasible
    design points as permanent without string-matching at call sites. *)
val infeasibility_of_exn : exn -> string option

(** Per-query {!Hls_timing.Bitdep.bit_deps} evaluation throughout: the
    executable reference for property tests and benchmark baselines.
    Produces the same plan as {!compute}. *)
val compute_reference :
  ?n_bits:int -> ?policy:policy -> Hls_dfg.Graph.t -> latency:int -> plan

(** Number of additive operations after fragmentation. *)
val fragment_count : plan -> int

(** Additions that must be broken up (more than one fragment). *)
val broken_op_count : plan -> int

val pp_frag : Format.formatter -> frag -> unit
val pp : Format.formatter -> plan -> unit
