(** Specification transformation: rebuild the kernel-form graph with every
    multi-fragment addition replaced by a chain of smaller additions.

    Each fragment over original result bits [lo..hi] becomes an addition of
    the operands' bits at those positions; a fragment that is not the top
    one is declared one bit wider so its carry out is a named result bit,
    and the fragment above consumes that bit as its carry in — exactly the
    ["0" & slice + "0" & slice ... + C(6)] idiom of the paper's transformed
    VHDL (Fig. 2a).  The original operation's value is reassembled by a
    [Concat] (pure wiring), so consumers — and the simulator — see an
    unchanged function.

    Each transformed node carries a scheduling window: fragments inherit
    their (ASAP, ALAP) cycle mobility; glue is unconstrained.  Because a
    fragment's bits all share one (ASAP, ALAP) pair, any placement within
    the window is bit-level consistent. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module B = Hls_dfg.Builder
module Operand = Hls_dfg.Operand
module Bv = Hls_bitvec

type t = {
  graph : Graph.t;
  plan : Mobility.plan;
  source : Graph.t;  (** the kernel-form graph the transform started from *)
  windows : (int * int) array;
      (** per transformed-node id: (ASAP, ALAP) cycle window *)
}

let zeros k = Operand.of_const (Bv.zero k)

(* The bits of extended operand [o] at computation positions [lo..hi]:
   [None] when the positions are pure zero padding. *)
let slice_positions (o : operand) ~lo ~hi =
  let w = Operand.width o in
  if lo < w then Some (Operand.reslice o ~hi:(min hi (w - 1)) ~lo)
  else
    match o.ext with
    | Zext -> None
    | Sext -> Some { o with lo = o.hi; ext = Sext }

type builder_state = {
  b : B.t;
  mutable rev_windows : (int * int) list;
}

let mk st ?label ?origin ~window kind ~width operands =
  let o = B.node st.b kind ~width ?label ?origin operands in
  st.rev_windows <- window :: st.rev_windows;
  o

let free_window plan = (1, plan.Mobility.latency)

(* Build the fragment chain for one multi-fragment addition and return the
   operand over its reassembled full value. *)
let build_fragments st plan (n : node) ~mapped_operands frags =
  let op_name = if n.label = "" then Printf.sprintf "op%d" n.id else n.label in
  let a, bop, cin0 =
    match mapped_operands with
    | [ a; b ] -> (a, b, None)
    | [ a; b; c ] -> (a, b, Some c)
    | _ -> invalid_arg "Transform.build_fragments: malformed add"
  in
  let pieces, _ =
    List.fold_left
      (fun (pieces, carry) (f : Mobility.frag) ->
        let fw = Mobility.frag_width f in
        let has_carry_out = f.f_hi < n.width - 1 in
        let node_w = if has_carry_out then fw + 1 else fw in
        (* Position-exact operand bits; sign-extending slices must not leak
           into the carry column, so materialize them at fragment width. *)
        let fit o =
          match o with
          | None -> None
          | Some o ->
              if Operand.width o >= fw then Some { o with ext = Zext }
              else if o.ext = Sext then
                Some
                  (mk st ~window:(free_window plan) Wire ~width:fw [ o ])
              else Some o
        in
        let oa = fit (slice_positions a ~lo:f.f_lo ~hi:f.f_hi) in
        let ob = fit (slice_positions bop ~lo:f.f_lo ~hi:f.f_hi) in
        let x = Option.value oa ~default:(zeros 1) in
        let y = Option.value ob ~default:(zeros 1) in
        let cin = if f.f_lo = 0 then cin0 else carry in
        let operands = match cin with None -> [ x; y ] | Some c -> [ x; y; c ] in
        let label = Printf.sprintf "%s[%d:%d]" op_name f.f_hi f.f_lo in
        let origin =
          { orig_op = op_name; orig_lo = f.f_lo; orig_hi = f.f_hi }
        in
        let value =
          mk st ~label ~origin ~window:(f.f_asap, f.f_alap) Add ~width:node_w
            operands
        in
        let sum_slice = Operand.reslice value ~hi:(fw - 1) ~lo:0 in
        let carry_out =
          if has_carry_out then Some (Operand.reslice value ~hi:fw ~lo:fw)
          else None
        in
        (sum_slice :: pieces, carry_out))
      ([], None) frags
  in
  let pieces = List.rev pieces in
  match pieces with
  | [ single ] -> single
  | _ ->
      mk st ~window:(free_window plan)
        ~label:(op_name ^ ".val")
        Concat ~width:n.width pieces

(** Apply the fragmentation plan to a kernel-form graph. *)
let apply graph (plan : Mobility.plan) =
  let st =
    { b = B.create ~name:(Graph.name graph ^ "_frag"); rev_windows = [] }
  in
  List.iter
    (fun p ->
      ignore
        (B.input st.b p.port_name ~width:p.port_width ~signed:p.port_signed))
    graph.Graph.inputs;
  let map : (node_id, operand) Hashtbl.t = Hashtbl.create 64 in
  let map_operand (o : operand) =
    match o.src with
    | Input _ | Const _ -> o
    | Node id ->
        let base = Hashtbl.find map id in
        { base with hi = base.lo + o.hi; lo = base.lo + o.lo; ext = o.ext }
  in
  Graph.iter_nodes
    (fun n ->
      let mapped_operands = List.map map_operand n.operands in
      let value =
        match (n.kind, plan.per_node.(n.id)) with
        | Add, ([] | [ _ ]) ->
            (* Unfragmented addition: copy, carrying its window. *)
            let window =
              match plan.per_node.(n.id) with
              | [ f ] -> (f.Mobility.f_asap, f.Mobility.f_alap)
              | _ -> free_window plan
            in
            let op_name =
              if n.label = "" then Printf.sprintf "op%d" n.id else n.label
            in
            mk st ~label:op_name
              ~origin:{ orig_op = op_name; orig_lo = 0; orig_hi = n.width - 1 }
              ~window Add ~width:n.width mapped_operands
        | Add, frags -> build_fragments st plan n ~mapped_operands frags
        | _ ->
            mk st ~label:n.label ?origin:n.origin ~window:(free_window plan)
              n.kind ~width:n.width mapped_operands
      in
      Hashtbl.replace map n.id value)
    graph;
  List.iter
    (fun (name, o) -> B.output st.b name (map_operand o))
    graph.Graph.outputs;
  let g = B.finish st.b in
  let windows = Array.of_list (List.rev st.rev_windows) in
  assert (Array.length windows = Graph.node_count g);
  { graph = g; plan; source = graph; windows }

(** Convenience: plan + apply in one step.  [net]/[arrival] are forwarded
    to {!Mobility.compute} so sweeps can share them across latencies. *)
let run ?n_bits ?policy ?net ?arrival graph ~latency =
  apply graph (Mobility.compute ?n_bits ?policy ?net ?arrival graph ~latency)

(** Number of additive operations in the transformed specification (the
    paper's "+34 % operations" metric numerator). *)
let op_count t = Graph.behavioural_op_count t.graph
