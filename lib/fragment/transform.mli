(** Specification transformation: rebuild a kernel-form graph with every
    multi-fragment addition replaced by a chain of smaller additions linked
    through named carry bits (the paper's Fig. 2a idiom), reassembled by
    pure wiring so the graph's function is unchanged. *)

type t = {
  graph : Hls_dfg.Graph.t;
  plan : Mobility.plan;
  source : Hls_dfg.Graph.t;
      (** the kernel-form graph the transform started from *)
  windows : (int * int) array;
      (** per transformed-node id: (ASAP, ALAP) cycle window *)
}

(** Apply a fragmentation plan. *)
val apply : Hls_dfg.Graph.t -> Mobility.plan -> t

(** Plan + apply in one step.  [net]/[arrival] are forwarded to
    {!Mobility.compute} so sweeps can share them across latencies. *)
val run :
  ?n_bits:int -> ?policy:Mobility.policy -> ?net:Hls_timing.Bitnet.t ->
  ?arrival:Hls_timing.Arrival.t -> Hls_dfg.Graph.t -> latency:int -> t

(** Number of additive operations in the transformed specification. *)
val op_count : t -> int
