(** Lightweight observability for the synthesis pipeline and the DSE
    engine: hierarchical spans, counters and gauges behind a single global
    sink that is inert unless armed.

    Design discipline mirrors {!Hls_util.Faults}: every probe first reads
    one mutable record that normal runs never set, so the cost of a
    disabled probe on the hot path is a single load and branch.  Armed
    probes record under a mutex — workers are OCaml domains and spans can
    close concurrently — which is acceptable because arming is an explicit
    act of the measuring run, never the default.

    Two arming axes compose:

    - [metrics]: per-span-name call counts and total durations, counter
      totals and gauge last/max values accumulate in memory, readable via
      {!span_totals} / {!counter_total} / {!gauge_last} and rendered by
      {!metrics_summary}.
    - [trace]: every span close, counter bump, gauge set and instant event
      additionally appends a Chrome trace event ({!chrome_trace} /
      {!write_chrome_trace} produce a [chrome://tracing] /
      Perfetto-loadable JSON document).  Track ids are domain ids, so a
      DSE sweep naturally gets one track per worker domain.

    Timestamps come from one process-wide wall clock
    ([Unix.gettimeofday], rebased to the arming epoch); durations are
    clamped non-negative, so a stepping system clock can skew a trace but
    never produce an unloadable one.  (A raw OS monotonic clock needs C
    stubs this zero-dependency library deliberately avoids.) *)

(** Attribute values attached to spans and events; rendered into the
    trace event's [args] object. *)
type value = Int of int | Float of float | Str of string | Bool of bool

(** [arm ?trace ?metrics ?event_cap ()] turns the sink on (defaults:
    metrics only).  Arming is idempotent and does not clear previously
    recorded data; use {!reset} for that.  [event_cap] bounds the raw
    trace-event buffer (default: unbounded): a long-running traced
    process — the request server — keeps accumulating aggregates past the
    cap, but raw events are dropped and counted in {!dropped_events}
    instead of growing without limit. *)
val arm : ?trace:bool -> ?metrics:bool -> ?event_cap:int -> unit -> unit

(** Turn the sink fully off.  Recorded data is kept (a run typically
    disarms, then exports). *)
val disarm : unit -> unit

(** Drop every recorded event, counter, gauge and span total, and rebase
    the trace epoch to now. *)
val reset : unit -> unit

val armed : unit -> bool
val trace_armed : unit -> bool

(** [with_span ?cat ?attrs name f] runs [f] inside a span.  The span is
    closed (and its duration accounted) whether [f] returns or raises
    ([Fun.protect]), so traces stay balanced under exceptions.  At close,
    the GC is sampled into the [gc.major_words] (last) and
    [gc.top_heap_words] (max) gauges.  Disabled: exactly [f ()] after one
    branch. *)
val with_span :
  ?cat:string -> ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a

(** Spans currently open across all domains (0 when everything is
    balanced; used by tests). *)
val open_spans : unit -> int

(** [count ?n name] adds [n] (default 1) to counter [name]. *)
val count : ?n:int -> string -> unit

(** [gauge name v] records an instantaneous level (queue depth, heap
    words, utilization); last and max values are kept. *)
val gauge : string -> float -> unit

(** [event ?attrs name] records an instant event (e.g. a retry round). *)
val event : ?attrs:(string * value) list -> string -> unit

(** Name the current domain's track in the exported trace (thread
    metadata event), e.g. ["worker 3"]. *)
val name_track : string -> unit

(** Per-span-name (calls, total seconds), sorted by name. *)
val span_totals : unit -> (string * (int * float)) list

val counter_total : string -> int

(** All counters as (name, total), sorted by name. *)
val counter_totals : unit -> (string * int) list

val gauge_last : string -> float option
val gauge_max : string -> float option

(** All gauges as (name, (last, max)), sorted by name. *)
val gauge_bindings : unit -> (string * (float * float)) list

(** Recorded trace events (all kinds), oldest first: (name, track id).
    For tests; the JSON export is the real consumer surface. *)
val recorded_events : unit -> (string * int) list

(** Trace events currently buffered. *)
val event_count : unit -> int

(** Trace events dropped because the {!arm} [event_cap] was reached. *)
val dropped_events : unit -> int

(** The Chrome trace-event document as a JSON string:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)
val chrome_trace : unit -> string

val write_chrome_trace : string -> unit

(** Plain-text metrics report: span table, counter totals, gauge
    last/max.  Empty string when nothing was recorded. *)
val metrics_summary : unit -> string

(** Simple latency statistics over float samples (seconds, usually).
    Pure helpers — no arming required. *)
module Stats : sig
  (** [percentile samples p] is the nearest-rank percentile [p] (0..100)
      of [samples]; [nan] on the empty list. *)
  val percentile : float list -> float -> float

  val p50 : float list -> float
  val p95 : float list -> float
  val p99 : float list -> float
  val mean : float list -> float
end
