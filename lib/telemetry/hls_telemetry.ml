(* Global telemetry sink: inert unless armed (one load + branch on the
   disabled path, same discipline as Hls_util.Faults), mutex-protected
   when armed because spans close from worker domains.

   The trace side stores Chrome trace events (ph X/C/i/M) and serializes
   them itself — this library sits below every other in the stack, so it
   carries its own minimal JSON emitter rather than depending on one. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type mode = { m_trace : bool; m_metrics : bool }

let inert = { m_trace = false; m_metrics = false }
let mode = ref inert

type ev = {
  e_ph : char;  (* 'X' complete span, 'C' counter, 'i' instant, 'M' metadata *)
  e_name : string;
  e_cat : string;
  e_ts_us : float;
  e_dur_us : float;  (* 'X' only *)
  e_tid : int;
  e_args : (string * value) list;
}

let mu = Mutex.create ()
let events : ev list ref = ref []  (* newest first *)
let event_count_ = ref 0
let dropped_ = ref 0
let cap = ref max_int
let counters : (string, int) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float * float) Hashtbl.t = Hashtbl.create 32
let spans : (string, int * float) Hashtbl.t = Hashtbl.create 32
let open_count = ref 0
let epoch = ref (Unix.gettimeofday ())

let arm ?(trace = false) ?(metrics = true) ?event_cap () =
  (match event_cap with
  | Some c when c >= 0 -> cap := c
  | Some c -> invalid_arg (Printf.sprintf "Hls_telemetry.arm: negative event_cap %d" c)
  | None -> ());
  mode := { m_trace = trace; m_metrics = metrics }

let disarm () = mode := inert

let reset () =
  Mutex.lock mu;
  events := [];
  event_count_ := 0;
  dropped_ := 0;
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset spans;
  open_count := 0;
  epoch := Unix.gettimeofday ();
  Mutex.unlock mu

let armed () =
  let m = !mode in
  m.m_trace || m.m_metrics

let trace_armed () = !mode.m_trace

let tid () = (Domain.self () :> int)
let now () = Unix.gettimeofday ()
let us_of t = (t -. !epoch) *. 1e6

(* Callers hold [mu].  The buffer is bounded so a long-running traced
   process (the request server) cannot grow without limit: past the cap,
   aggregates (spans/counters/gauges) keep accumulating but raw trace
   events are dropped and counted instead of stored. *)
let push_locked e =
  if !event_count_ >= !cap then incr dropped_
  else begin
    events := e :: !events;
    incr event_count_
  end

let set_gauge_locked name v =
  let _, mx = Option.value (Hashtbl.find_opt gauges name) ~default:(v, v) in
  Hashtbl.replace gauges name (v, Float.max mx v)

let with_span ?(cat = "hls") ?(attrs = []) name f =
  let m = !mode in
  if not (m.m_trace || m.m_metrics) then f ()
  else begin
    let tid = tid () in
    Mutex.lock mu;
    incr open_count;
    Mutex.unlock mu;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Float.max 0. (now () -. t0) in
        (* One GC sample per span close: major words climb monotonically
           (a counter in gauge clothing), top_heap_words tracks the
           high-water mark of the heap. *)
        let gc = Gc.quick_stat () in
        Mutex.lock mu;
        decr open_count;
        let c, tot =
          Option.value (Hashtbl.find_opt spans name) ~default:(0, 0.)
        in
        Hashtbl.replace spans name (c + 1, tot +. dur);
        set_gauge_locked "gc.major_words" gc.Gc.major_words;
        set_gauge_locked "gc.top_heap_words" (float_of_int gc.Gc.top_heap_words);
        if !mode.m_trace then
          push_locked
            {
              e_ph = 'X';
              e_name = name;
              e_cat = cat;
              e_ts_us = us_of t0;
              e_dur_us = dur *. 1e6;
              e_tid = tid;
              e_args = attrs;
            };
        Mutex.unlock mu)
      f
  end

let open_spans () =
  Mutex.lock mu;
  let n = !open_count in
  Mutex.unlock mu;
  n

let count ?(n = 1) name =
  let m = !mode in
  if m.m_trace || m.m_metrics then begin
    let t = now () in
    Mutex.lock mu;
    let total = Option.value (Hashtbl.find_opt counters name) ~default:0 + n in
    Hashtbl.replace counters name total;
    if m.m_trace then
      push_locked
        {
          e_ph = 'C';
          e_name = name;
          e_cat = "counter";
          e_ts_us = us_of t;
          e_dur_us = 0.;
          e_tid = tid ();
          e_args = [ ("value", Int total) ];
        };
    Mutex.unlock mu
  end

let gauge name v =
  let m = !mode in
  if m.m_trace || m.m_metrics then begin
    let t = now () in
    Mutex.lock mu;
    set_gauge_locked name v;
    if m.m_trace then
      push_locked
        {
          e_ph = 'C';
          e_name = name;
          e_cat = "gauge";
          e_ts_us = us_of t;
          e_dur_us = 0.;
          e_tid = tid ();
          e_args = [ ("value", Float v) ];
        };
    Mutex.unlock mu
  end

let event ?(attrs = []) name =
  let m = !mode in
  if m.m_trace || m.m_metrics then begin
    let t = now () in
    Mutex.lock mu;
    if m.m_trace then
      push_locked
        {
          e_ph = 'i';
          e_name = name;
          e_cat = "event";
          e_ts_us = us_of t;
          e_dur_us = 0.;
          e_tid = tid ();
          e_args = attrs;
        };
    Mutex.unlock mu
  end

let name_track name =
  let m = !mode in
  if m.m_trace then begin
    Mutex.lock mu;
    push_locked
      {
        e_ph = 'M';
        e_name = "thread_name";
        e_cat = "__metadata";
        e_ts_us = 0.;
        e_dur_us = 0.;
        e_tid = tid ();
        e_args = [ ("name", Str name) ];
      };
    Mutex.unlock mu
  end

(* ---- read side ---------------------------------------------------- *)

let sorted_bindings tbl =
  Mutex.lock mu;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  Mutex.unlock mu;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let span_totals () = sorted_bindings spans
let counter_totals () = sorted_bindings counters

let counter_total name =
  Mutex.lock mu;
  let v = Option.value (Hashtbl.find_opt counters name) ~default:0 in
  Mutex.unlock mu;
  v

let gauge_find name =
  Mutex.lock mu;
  let v = Hashtbl.find_opt gauges name in
  Mutex.unlock mu;
  v

let gauge_last name = Option.map fst (gauge_find name)
let gauge_max name = Option.map snd (gauge_find name)
let gauge_bindings () = sorted_bindings gauges

let event_count () =
  Mutex.lock mu;
  let n = !event_count_ in
  Mutex.unlock mu;
  n

let dropped_events () =
  Mutex.lock mu;
  let n = !dropped_ in
  Mutex.unlock mu;
  n

let recorded_events () =
  Mutex.lock mu;
  let l = !events in
  Mutex.unlock mu;
  List.rev_map (fun e -> (e.e_name, e.e_tid)) l

(* ---- Chrome trace-event JSON export ------------------------------- *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | Str s -> add_json_string b s
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let add_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      add_json_string b k;
      Buffer.add_string b ": ";
      add_value b v)
    args;
  Buffer.add_char b '}'

let add_event b pid e =
  Buffer.add_string b "{\"name\": ";
  add_json_string b e.e_name;
  Buffer.add_string b ", \"cat\": ";
  add_json_string b e.e_cat;
  Buffer.add_string b (Printf.sprintf ", \"ph\": \"%c\"" e.e_ph);
  Buffer.add_string b (Printf.sprintf ", \"ts\": %.3f" e.e_ts_us);
  if e.e_ph = 'X' then
    Buffer.add_string b (Printf.sprintf ", \"dur\": %.3f" e.e_dur_us);
  if e.e_ph = 'i' then Buffer.add_string b ", \"s\": \"t\"";
  Buffer.add_string b (Printf.sprintf ", \"pid\": %d, \"tid\": %d" pid e.e_tid);
  if e.e_args <> [] then begin
    Buffer.add_string b ", \"args\": ";
    add_args b e.e_args
  end;
  Buffer.add_char b '}'

let chrome_trace () =
  Mutex.lock mu;
  let evs = List.rev !events in
  Mutex.unlock mu;
  let pid = Unix.getpid () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "  ";
      add_event b pid e)
    evs;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let write_chrome_trace path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ()))

(* ---- plain-text metrics summary ----------------------------------- *)

let metrics_summary () =
  let spans = span_totals () in
  let counters = counter_totals () in
  let gauges = sorted_bindings gauges in
  if spans = [] && counters = [] && gauges = [] then ""
  else begin
    let b = Buffer.create 1024 in
    if spans <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "%-24s %8s %12s %12s\n" "span" "calls" "total ms"
           "mean us");
      List.iter
        (fun (name, (c, tot)) ->
          Buffer.add_string b
            (Printf.sprintf "%-24s %8d %12.3f %12.2f\n" name c (tot *. 1e3)
               (tot /. float_of_int (max 1 c) *. 1e6)))
        spans
    end;
    if counters <> [] then begin
      Buffer.add_string b "counters:\n";
      List.iter
        (fun (name, v) ->
          Buffer.add_string b (Printf.sprintf "  %-24s %12d\n" name v))
        counters
    end;
    if gauges <> [] then begin
      Buffer.add_string b "gauges (last / max):\n";
      List.iter
        (fun (name, (last, mx)) ->
          Buffer.add_string b
            (Printf.sprintf "  %-24s %14.1f %14.1f\n" name last mx))
        gauges
    end;
    Buffer.contents b
  end

(* ---- latency statistics ------------------------------------------- *)

module Stats = struct
  (* Percentile over a sample of latencies (or any float samples).
     Nearest-rank on the sorted copy; the input is not mutated. *)
  let percentile samples p =
    match samples with
    | [] -> nan
    | _ ->
        let a = Array.of_list samples in
        Array.sort compare a;
        let n = Array.length a in
        let p = if p < 0. then 0. else if p > 100. then 100. else p in
        let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
        a.(max 0 (min (n - 1) (rank - 1)))

  let p50 samples = percentile samples 50.
  let p95 samples = percentile samples 95.
  let p99 samples = percentile samples 99.

  let mean = function
    | [] -> nan
    | samples ->
        List.fold_left ( +. ) 0. samples /. float_of_int (List.length samples)
end
