(** Constant folding and algebraic simplification.

    A node whose operands are all constants is evaluated at compile time
    (using the reference simulator's own semantics, so folding can never
    disagree with execution); the usual identities collapse trivial
    operations: x+0, x-0, x·1, x·0, x&0, x|0, muxes with constant
    selects. *)

open Hls_dfg.Types
module Graph = Hls_dfg.Graph
module B = Hls_dfg.Builder
module Operand = Hls_dfg.Operand
module Bv = Hls_bitvec

(* Constant value of an operand in the new graph, if any (the full selected
   range). *)
let const_of (o : operand) =
  match o.src with
  | Const bv -> Some (Bv.slice bv ~hi:o.hi ~lo:o.lo)
  | Input _ | Node _ -> None

let is_zero o = match const_of o with Some bv -> Bv.to_int bv = 0 | None -> false

let is_one o = match const_of o with Some bv -> Bv.to_int bv = 1 | None -> false

(* Wrap an operand so it denotes the node's width (for identity
   rewrites that return an operand of different width). *)
let fit ctx (n : node) o =
  let w = Operand.width o in
  if w = n.width then o
  else
    B.node ctx.Rewrite.b Wire ~width:n.width ~label:n.label [ o ]

let fold_node ctx (n : node) =
  let operands = List.map (Rewrite.map_operand ctx) n.operands in
  let consts = List.map const_of operands in
  let all_const = List.for_all Option.is_some consts in
  if all_const && n.operands <> [] then begin
    (* Evaluate with the reference semantics on a shim graph slice. *)
    let shim = { n with operands } in
    let value =
      Hls_sim.eval_node
        { Graph.name = "fold"; inputs = []; outputs = []; nodes = [||];
          cached_index = Atomic.make None }
        [||] ~inputs:[] shim
    in
    Operand.of_const value
  end
  else
    let op i = List.nth operands i in
    match n.kind with
    | Add when List.length operands = 2 && is_zero (op 0)
               && Operand.width (op 1) >= n.width ->
        fit ctx n (op 1)
    | Add when List.length operands = 2 && is_zero (op 1)
               && Operand.width (op 0) >= n.width ->
        fit ctx n (op 0)
    | Sub when is_zero (op 1) && Operand.width (op 0) >= n.width ->
        fit ctx n (op 0)
    | Mul when is_zero (op 0) || is_zero (op 1) ->
        Operand.of_const (Bv.zero n.width)
    | Mul when is_one (op 1) && n.signedness = Unsigned ->
        fit ctx n (op 0)
    | Mul when is_one (op 0) && n.signedness = Unsigned ->
        fit ctx n (op 1)
    | And when is_zero (op 0) || is_zero (op 1) ->
        Operand.of_const (Bv.zero n.width)
    | Or when is_zero (op 0) -> fit ctx n (op 1)
    | Or when is_zero (op 1) -> fit ctx n (op 0)
    | Gate when is_zero (op 1) -> Operand.of_const (Bv.zero n.width)
    | Gate when is_one (op 1) -> fit ctx n (op 0)
    | Mux when is_one (op 0) -> fit ctx n (op 1)
    | Mux when is_zero (op 0) -> fit ctx n (op 2)
    | _ ->
        B.node ctx.Rewrite.b n.kind ~width:n.width ~signedness:n.signedness
          ~label:n.label ?origin:n.origin operands

(** Fold the whole graph. *)
let run g = Rewrite.run g ~f:fold_node
