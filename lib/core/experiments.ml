(** Drivers that regenerate every table and figure of the paper's
    evaluation (experiment index E1–E8 in DESIGN.md).

    Absolute nanoseconds and gate counts come from the calibrated
    {!Hls_techlib} model rather than Synopsys tools, so the comparisons are
    meaningful *within* a table (original vs optimized vs BLC of the same
    graph through the same flow), which is exactly what the paper's
    percentages measure. *)

module Graph = Hls_dfg.Graph
module Datapath = Hls_alloc.Datapath
module P = Pipeline

(* The paper's tables are only defined at feasible points, so failure of
   the optimized flow re-raises as the classified fault. *)
let optimized ~lib graph ~latency =
  match P.run_graph (P.make_config ~lib ()) graph ~latency with
  | Ok r -> r
  | Error f -> raise (Hls_util.Failure.Flow_failure f)

(** {1 Table I — the motivational example} *)

type table1 = {
  t1_conventional : P.report;  (** Fig. 1 b: one shared 16-bit adder *)
  t1_blc : P.report;  (** Fig. 1 d: three chained adders, λ=1 *)
  t1_optimized : P.report;  (** Fig. 2: the transformed specification *)
}

let table1 ?(lib = Hls_techlib.default) ?(width = 16) () =
  let g = Hls_workloads.Motivational.chain ~width ~ops:3 () in
  {
    t1_conventional = P.conventional ~lib g ~latency:3;
    t1_blc = P.blc ~lib g ~latency:1;
    t1_optimized = (optimized ~lib g ~latency:3).P.opt_report;
  }

(** {1 Fig. 3 g/h — the 8-operation DFG} *)

type fig3 = {
  f3_conventional : P.report;
  f3_optimized : P.report;
  f3_schedule : Hls_sched.Frag_sched.t;
      (** the fragment schedule, for printing the per-cycle assignment *)
}

let fig3 ?(lib = Hls_techlib.default) () =
  let g = Hls_workloads.Motivational.fig3 () in
  let opt = optimized ~lib g ~latency:3 in
  {
    f3_conventional = P.conventional ~lib g ~latency:3;
    f3_optimized = opt.P.opt_report;
    f3_schedule = opt.P.schedule;
  }

(** {1 Table II — classical benchmarks} *)

type bench_row = {
  bench : string;
  row_latency : int;
  cycle_original_ns : float;
  cycle_optimized_ns : float;
  cycle_saved_pct : float;
  datapath_original_gates : int;
  datapath_optimized_gates : int;
  area_increment_pct : float;  (** positive = optimized is bigger *)
  ops_original : int;
  ops_optimized : int;
      (** operations after kernel extraction (the paper's "+34 %" basis) *)
  fragments : int;  (** additions actually scheduled *)
  equivalence : (unit, string) result;
      (** bit-true check of the transformed specification *)
}

let bench_row ?(lib = Hls_techlib.default) ?(check_equivalence = true) ~name
    graph ~latency =
  let conv = P.conventional ~lib graph ~latency in
  let opt = optimized ~lib graph ~latency in
  let r = opt.P.opt_report in
  let datapath_original_gates = Datapath.datapath_gates lib conv.P.datapath in
  let datapath_optimized_gates = Datapath.datapath_gates lib r.P.datapath in
  {
    bench = name;
    row_latency = latency;
    cycle_original_ns = conv.P.cycle_ns;
    cycle_optimized_ns = r.P.cycle_ns;
    cycle_saved_pct =
      P.pct_saved ~original:conv.P.cycle_ns ~optimized:r.P.cycle_ns;
    datapath_original_gates;
    datapath_optimized_gates;
    area_increment_pct =
      -.Hls_util.Pretty.pct
          ~from:(float_of_int datapath_original_gates)
          ~to_:(float_of_int datapath_optimized_gates);
    ops_original = conv.P.op_count;
    ops_optimized = r.P.op_count;
    fragments = r.P.fragment_count;
    equivalence =
      (if check_equivalence then P.check_optimized_equivalence graph opt
       else Ok ());
  }

let table2 ?(lib = Hls_techlib.default) ?(width = 16) () =
  List.concat_map
    (fun (name, graph, latencies) ->
      List.map (fun latency -> bench_row ~lib ~name graph ~latency) latencies)
    (Hls_workloads.Benchmarks.table2_set ~width ())

(** {1 Table III — ADPCM decoder modules} *)

let table3 ?(lib = Hls_techlib.default) () =
  List.map
    (fun (name, graph, latency) -> bench_row ~lib ~name graph ~latency)
    (Hls_workloads.Adpcm.table3_set ())

(** Average cycle saving over a row list (the paper quotes 67 % for
    Table II and 66 % for Table III). *)
let average_cycle_saved rows =
  match rows with
  | [] -> 0.
  | _ ->
      Hls_util.List_ext.sum_by (fun _ -> 1) rows |> fun n ->
      List.fold_left (fun acc r -> acc +. r.cycle_saved_pct) 0. rows
      /. float_of_int n

let average_area_increment rows =
  match rows with
  | [] -> 0.
  | _ ->
      List.fold_left (fun acc r -> acc +. r.area_increment_pct) 0. rows
      /. float_of_int (List.length rows)

let average_op_increase_pct rows =
  match rows with
  | [] -> 0.
  | _ ->
      List.fold_left
        (fun acc r ->
          acc
          +. (float_of_int (r.ops_optimized - r.ops_original)
              /. float_of_int (max 1 r.ops_original)
              *. 100.))
        0. rows
      /. float_of_int (List.length rows)

(** {1 Fig. 4 — cycle length vs latency} *)

type fig4_point = {
  f4_latency : int;
  f4_original_ns : float;
  f4_optimized_ns : float;
}

(** Sweep λ over [latencies] for [graph] (the paper sweeps 3..15 on a
    behavioural description; the bench uses the elliptic filter). *)
let fig4 ?(lib = Hls_techlib.default) ?(latencies = Hls_util.List_ext.range 3 16)
    graph =
  List.filter_map
    (fun latency ->
      match
        ( P.conventional ~lib graph ~latency,
          optimized ~lib graph ~latency )
      with
      | conv, opt ->
          Some
            {
              f4_latency = latency;
              f4_original_ns = conv.P.cycle_ns;
              f4_optimized_ns = opt.P.opt_report.P.cycle_ns;
            }
      | exception Hls_sched.List_sched.Infeasible _ -> None)
    latencies
