(** The three synthesis flows the paper compares.

    - {!conventional}: the baseline — schedule the original behavioural
      specification with an operation-atomic chaining scheduler at the
      minimal feasible cycle, then share functional units and registers.
    - {!optimized}: the paper's method — operative kernel extraction
      (§3.1), cycle estimation (§3.2), operation fragmentation (§3.3), a
      conventional schedule of the fragments, dedicated adders, bit-level
      registers.
    - {!blc}: the strongest prior art (bit-level chaining): operations stay
      atomic but overlap at the bit level within a cycle; dedicated FUs.

    Every flow returns the same report shape so tables compare directly. *)

module Graph = Hls_dfg.Graph
module Datapath = Hls_alloc.Datapath

(* Phase spans of the optimized flow; inert (one branch) unless a
   measuring run armed the telemetry sink. *)
let span name f = Hls_telemetry.with_span ~cat:"pipeline" name f

(* Teach the shared taxonomy this stack's permanent faults: a fragment
   plan whose budget cannot cover the critical path (Mobility's witnessed
   infeasibility) and a fragment schedule with no legal placement.  Both
   mean the design point itself cannot exist — retrying is pointless.
   Runs at module initialization, before any worker domain is spawned. *)
let () =
  Hls_util.Failure.register_classifier (function
    | Hls_sched.Frag_sched.Infeasible m ->
        Some (Hls_util.Failure.Infeasible m)
    | e ->
        Option.map
          (fun m -> Hls_util.Failure.Infeasible m)
          (Hls_fragment.Mobility.infeasibility_of_exn e))

(** Classify an exception escaping one of this module's flows. *)
let classify_exn = Hls_util.Failure.classify_exn

type report = {
  flow : string;
  latency : int;
  cycle_delta : int;  (** cycle length in δ (chained 1-bit additions) *)
  cycle_ns : float;
  execution_ns : float;
  op_count : int;
      (** operations in the specification: for the optimized flow this is
          the operation count *after kernel extraction* — fragments still
          belong to their parent operation, matching how the paper counts
          its "+34 %" growth *)
  fragment_count : int;  (** additions actually scheduled (fragments) *)
  datapath : Datapath.t;
  area : Datapath.area;
}

let report ~flow ~lib ~op_count ?(fragment_count = op_count)
    (dp : Datapath.t) =
  {
    flow;
    latency = dp.Datapath.latency;
    cycle_delta = dp.Datapath.chain_delta;
    cycle_ns = Datapath.cycle_ns lib dp;
    execution_ns = Datapath.execution_ns lib dp;
    op_count;
    fragment_count;
    datapath = dp;
    area = Datapath.area lib dp;
  }

(** Baseline flow on the original behavioural graph.  Operation delays
    come from the technology library, so a carry-lookahead library gives
    the baseline its faster (logarithmic-depth) atoms. *)
let conventional ?(lib = Hls_techlib.default) graph ~latency =
  let delay = Hls_sched.Op_delay.delay_with ~lib in
  let sched = Hls_sched.List_sched.schedule ~delay graph ~latency in
  let dp = Hls_alloc.Bind_shared.bind sched in
  report ~flow:"conventional" ~lib
    ~op_count:(Graph.behavioural_op_count graph)
    dp

(** Bit-level-chaining baseline on the original behavioural graph. *)
let blc ?(lib = Hls_techlib.default) graph ~latency =
  let sched = Hls_sched.Blc_sched.schedule graph ~latency in
  let dp = Hls_alloc.Bind_blc.bind sched in
  report ~flow:"blc" ~lib ~op_count:(Graph.behavioural_op_count graph) dp

type optimized_result = {
  opt_report : report;
  kernel : Graph.t;  (** graph after operative kernel extraction *)
  transformed : Hls_fragment.Transform.t;
  schedule : Hls_sched.Frag_sched.t;
  iteration : Hls_iter.Iter.outcome option;
      (** per-round audit of the feedback-guided scheduling loop; [None]
          when the point ran one-shot ([config.iterate = 0]) *)
}

(** Behavioural transformation of the specification graph, before any
    kernel extraction: run the [transform] recipe through the verified
    pass manager.  Returns the (possibly rewritten) graph and the pass
    log.  An empty recipe is free. *)
let transform_graph ?(transform = Hls_xform.Recipe.none)
    ?(verify = Hls_xform.Verify.Off) graph =
  if transform.Hls_xform.Recipe.steps = [] then (graph, [])
  else
    let o =
      span "transform" (fun () ->
          Hls_xform.Engine.apply ~policy:verify transform graph)
    in
    (o.Hls_xform.Engine.graph, o.Hls_xform.Engine.log)

(** The shared prefix of the optimized flow: the behavioural
    transformation recipe, then operative kernel extraction.  It depends
    only on the graph (not on latency, policy or library), which is what
    makes it worth memoizing across a design-space sweep. *)
let prepare_kernel ?transform ?verify graph =
  let g, _log = transform_graph ?transform ?verify graph in
  span "kernel" (fun () -> Hls_kernel.Extract.run g)

type prepared = {
  p_kernel : Graph.t;  (** graph after operative kernel extraction *)
  p_net : Hls_timing.Bitnet.t;  (** dependency net of the kernel *)
  p_arrival : Hls_timing.Arrival.t;
      (** arrival analysis of the kernel — latency-independent, so one
          result serves every point of a latency sweep *)
  p_xform : Hls_xform.Engine.entry list;
      (** pass log of the behavioural transformation that preceded
          extraction; empty when prepared from a bare kernel *)
}

(** Extend an already extracted kernel with its dependency net and arrival
    analysis, both latency-independent.  [workers > 1] runs the arrival
    wavefront region-parallel over the domain pool — worthwhile on large
    multi-region kernels, pure overhead on small ones, so serial stays
    the default. *)
let prepared_of_kernel ?workers ?pool kernel =
  let net = span "bitnet" (fun () -> Hls_timing.Bitnet.build kernel) in
  let arrival =
    span "arrival" (fun () ->
        match (workers, pool) with
        | _, Some p -> Hls_timing.Arrival.of_net_parallel ?workers ~pool:p net
        | Some w, None when w > 1 ->
            Hls_timing.Arrival.of_net_parallel ~workers:w net
        | _ -> Hls_timing.Arrival.of_net net)
  in
  { p_kernel = kernel; p_net = net; p_arrival = arrival; p_xform = [] }

(** Behavioural transformation, kernel extraction, then the
    latency-independent timing prework. *)
let prepare ?transform ?verify ?workers ?pool graph =
  let g, log = transform_graph ?transform ?verify graph in
  let kernel = span "kernel" (fun () -> Hls_kernel.Extract.run g) in
  { (prepared_of_kernel ?workers ?pool kernel) with p_xform = log }

(** One record for every per-point knob of the optimized flow.
    [transform] and [verify] only matter to the entry points that start
    from a bare graph ({!run_graph}); {!run} takes an already
    [prepare]d kernel, whose transformation decision was made when it
    was prepared. *)
type config = {
  lib : Hls_techlib.t;
  policy : Hls_fragment.Mobility.policy;
  balance : bool;
  transform : Hls_xform.Recipe.t;
  verify : Hls_xform.Verify.policy;
  iterate : int;
      (** accepted-round budget of the feedback-guided scheduling loop;
          0 (the default) keeps the one-shot greedy schedule *)
}

let default_config =
  { lib = Hls_techlib.default; policy = `Full; balance = true;
    transform = Hls_xform.Recipe.none; verify = Hls_xform.Verify.Off;
    iterate = 0 }

let make_config ?(lib = Hls_techlib.default) ?(policy = `Full)
    ?(balance = true) ?cleanup ?transform
    ?(verify = Hls_xform.Verify.Off) ?(iterate = 0) () =
  (* [cleanup] is the historic boolean this record used to carry; it maps
     onto the "cleanup" preset recipe.  An explicit [transform] wins. *)
  let transform =
    match (transform, cleanup) with
    | Some t, _ -> t
    | None, Some true -> Hls_xform.Recipe.cleanup
    | None, (Some false | None) -> Hls_xform.Recipe.none
  in
  { lib; policy; balance; transform; verify; iterate }

(** The per-point suffix of the optimized flow on prepared timing state:
    cycle estimation + fragmentation ([policy]), fragment scheduling
    ([balance]), dedicated-adder binding.  The kernel's net and arrival are
    reused, so a latency sweep pays for them once. *)
let optimized_of_prepared ?(lib = Hls_techlib.default) ?policy ?balance
    ?(iterate = 0) p ~latency =
  (* Transform.run = Mobility.compute + Transform.apply; split here so the
     two phases span separately. *)
  let plan =
    span "mobility" (fun () ->
        Hls_fragment.Mobility.compute ?policy ~net:p.p_net
          ~arrival:p.p_arrival p.p_kernel ~latency)
  in
  let transformed =
    span "fragment" (fun () -> Hls_fragment.Transform.apply p.p_kernel plan)
  in
  let schedule =
    span "schedule" (fun () ->
        Hls_sched.Frag_sched.schedule ?balance transformed)
  in
  (* The feedback loop only ever drops cycles at a chain no longer than
     the one-shot's, so binding the iterated schedule is never worse than
     binding the one-shot.  The kernel's net and arrival serve every
     re-planning round. *)
  let schedule, iteration =
    if iterate > 0 then begin
      let o =
        span "iterate" (fun () ->
            Hls_iter.Iter.improve ?balance ?policy ~net:p.p_net
              ~arrival:p.p_arrival ~max_rounds:iterate schedule)
      in
      (o.Hls_iter.Iter.o_schedule, Some o)
    end
    else (schedule, None)
  in
  let dp = span "bind" (fun () -> Hls_alloc.Bind_frag.bind schedule) in
  {
    opt_report =
      report ~flow:"optimized" ~lib
        ~op_count:(Graph.behavioural_op_count p.p_kernel)
        ~fragment_count:(Hls_fragment.Transform.op_count transformed)
        dp;
    kernel = p.p_kernel;
    transformed;
    schedule;
    iteration;
  }

(** The single supported per-point entry: the optimized-flow suffix under
    one [config], with the {!Hls_util.Failure} taxonomy instead of an
    escaping exception. *)
let run config p ~latency =
  match
    optimized_of_prepared ~lib:config.lib ~policy:config.policy
      ~balance:config.balance ~iterate:config.iterate p ~latency
  with
  | r -> Ok r
  | exception e -> Error (classify_exn e)

(** Like {!run} with iteration forced on (at least one round), returning
    the per-round audit alongside the result. *)
let run_iterated config p ~latency =
  let config = { config with iterate = max 1 config.iterate } in
  match run config p ~latency with
  | Ok ({ iteration = Some o; _ } as r) -> Ok (r, o)
  | Ok { iteration = None; _ } ->
      Error
        (Hls_util.Failure.Internal
           (Stdlib.Failure "iterated run produced no audit"))
  | Error e -> Error e

(** {!prepare} + {!run} from a bare behavioural graph; preparation faults
    are classified too, so no exception escapes. *)
let run_graph config graph ~latency =
  match prepare ~transform:config.transform ~verify:config.verify graph with
  | p -> run config p ~latency
  | exception e -> Error (classify_exn e)

(** End-to-end functional check: the transformed, scheduled specification
    still computes the original behaviour.  Uses the combined strategy of
    {!Hls_check}: exhaustive when the input space is small, corner vectors
    plus [trials] random samples otherwise. *)
let check_optimized_equivalence ?(trials = 40) ?(seed = 99) graph result =
  match
    Hls_check.equivalent ~samples:trials ~seed graph
      result.transformed.Hls_fragment.Transform.graph
  with
  | Hls_check.Proved | Hls_check.Passed _ -> Ok ()
  | Hls_check.Failed _ as f ->
      Error (Format.asprintf "%a" Hls_check.pp_verdict f)

(** The latency a conventional tool would pick when free to choose: the
    ASAP schedule length at the tightest single-operation cycle (the
    paper's Table III uses the latency BC selects in free-floating mode). *)
let free_floating_latency graph =
  let c = Hls_sched.Op_delay.max_delay graph in
  let finish = Hls_sched.List_sched.asap_finish graph ~cycle_delta:c in
  Hls_sched.List_sched.latency_of_finish ~cycle_delta:c finish

(** The dual problem: given a clock-period target in ns, find the smallest
    latency whose fragmented schedule meets it, and run the optimized flow
    there.  Returns [None] when even a 1 δ chain misses the target (the
    period is below the sequential overhead). *)
let optimized_for_cycle ?(lib = Hls_techlib.default) graph ~target_ns =
  let p = prepare graph in
  let critical = Hls_timing.Arrival.critical_delta p.p_arrival in
  (* Invert the period model: usable chain = (target - overhead - mux). *)
  let chain_budget =
    int_of_float
      ((target_ns -. lib.Hls_techlib.seq_overhead_ns
        -. lib.Hls_techlib.mux_delay_ns)
       /. lib.Hls_techlib.delta_ns)
  in
  if chain_budget < 1 then None
  else
    let latency =
      Hls_timing.Critical_path.latency_for_cycle_delta ~critical
        ~n_bits:chain_budget
    in
    Some (latency, optimized_of_prepared ~lib p ~latency)

let pct_saved ~original ~optimized =
  Hls_util.Pretty.pct ~from:original ~to_:optimized

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s: latency %d, cycle %d delta = %.2f ns, exec %.2f ns, %d ops \
     (%d scheduled additions)@ %a@]"
    r.flow r.latency r.cycle_delta r.cycle_ns r.execution_ns r.op_count
    r.fragment_count Datapath.pp_area r.area
