(** The three synthesis flows the paper compares, with a common report
    shape. *)

type report = {
  flow : string;
  latency : int;
  cycle_delta : int;  (** cycle length in δ (chained 1-bit additions) *)
  cycle_ns : float;
  execution_ns : float;
  op_count : int;
      (** operations in the specification: for the optimized flow this is
          the operation count *after kernel extraction* — fragments still
          belong to their parent operation, matching how the paper counts
          its "+34 %" growth *)
  fragment_count : int;  (** additions actually scheduled (fragments) *)
  datapath : Hls_alloc.Datapath.t;
  area : Hls_alloc.Datapath.area;
}

(** Baseline flow on the original behavioural graph: operation-atomic
    chaining schedule at the minimal feasible cycle, shared FUs,
    whole-value registers.  Operation delays come from the technology
    library (carry-lookahead libraries get faster atoms). *)
val conventional :
  ?lib:Hls_techlib.t -> Hls_dfg.Graph.t -> latency:int -> report

(** Bit-level-chaining baseline: dedicated FUs, fastest cycles. *)
val blc : ?lib:Hls_techlib.t -> Hls_dfg.Graph.t -> latency:int -> report

type optimized_result = {
  opt_report : report;
  kernel : Hls_dfg.Graph.t;  (** graph after operative kernel extraction *)
  transformed : Hls_fragment.Transform.t;
  schedule : Hls_sched.Frag_sched.t;
  iteration : Hls_iter.Iter.outcome option;
      (** per-round audit of the feedback-guided scheduling loop; [None]
          when the point ran one-shot ([config.iterate = 0]) *)
}

(** The shared, latency-independent prefix of the optimized flow: the
    behavioural transformation recipe (verified pass by pass under
    [verify]), then operative kernel extraction.  Sweeps memoize this per
    graph and fan the suffix out over it. *)
val prepare_kernel :
  ?transform:Hls_xform.Recipe.t -> ?verify:Hls_xform.Verify.policy ->
  Hls_dfg.Graph.t -> Hls_dfg.Graph.t

type prepared = {
  p_kernel : Hls_dfg.Graph.t;  (** graph after operative kernel extraction *)
  p_net : Hls_timing.Bitnet.t;  (** dependency net of the kernel *)
  p_arrival : Hls_timing.Arrival.t;
      (** arrival analysis of the kernel — latency-independent, so one
          result serves every point of a latency sweep *)
  p_xform : Hls_xform.Engine.entry list;
      (** pass log of the behavioural transformation that preceded
          extraction; empty when prepared from a bare kernel *)
}

(** Behavioural transformation, kernel extraction, then the
    latency-independent timing prework (the kernel's dependency net and
    arrival analysis).  [workers > 1] runs the arrival wavefront
    region-parallel over the domain pool ({!Hls_timing.Arrival.of_net_parallel})
    — worthwhile on large multi-region kernels; serial is the default.
    [pool] runs the same region jobs on an existing shared domain pool
    ({!Hls_pool.Shared}) instead of spawning domains per call — the
    serving tier batches many requests' timing jobs onto one pool. *)
val prepare :
  ?transform:Hls_xform.Recipe.t -> ?verify:Hls_xform.Verify.policy ->
  ?workers:int -> ?pool:Hls_pool.Shared.t -> Hls_dfg.Graph.t -> prepared

(** Extend an already extracted kernel with its timing prework.
    [workers] and [pool] as in {!prepare}. *)
val prepared_of_kernel :
  ?workers:int -> ?pool:Hls_pool.Shared.t -> Hls_dfg.Graph.t -> prepared

(** One record for every per-point knob of the optimized flow.
    [transform] (a behavioural transformation recipe applied before
    kernel extraction) and [verify] (the equivalence-gate policy on its
    passes) only matter to the entry points that start from a bare graph
    ({!run_graph}); {!run} takes an already {!prepare}d kernel, whose
    transformation decision was made when it was prepared. *)
type config = {
  lib : Hls_techlib.t;
  policy : Hls_fragment.Mobility.policy;
  balance : bool;
  transform : Hls_xform.Recipe.t;
  verify : Hls_xform.Verify.policy;
  iterate : int;
      (** accepted-round budget of the feedback-guided scheduling loop
          ({!Hls_iter.Iter}); 0 (the default) keeps the one-shot greedy
          schedule *)
}

(** Ripple library, [`Full] fragmentation, balanced scheduling, no
    transformation — the paper's reproduction settings. *)
val default_config : config

(** [cleanup] is the historic boolean knob this record used to carry; it
    maps onto the ["cleanup"] preset recipe ([repeat(fold,cse,dce)]).
    An explicit [transform] wins over it. *)
val make_config :
  ?lib:Hls_techlib.t -> ?policy:Hls_fragment.Mobility.policy ->
  ?balance:bool -> ?cleanup:bool -> ?transform:Hls_xform.Recipe.t ->
  ?verify:Hls_xform.Verify.policy -> ?iterate:int -> unit -> config

(** The single supported per-point entry of the optimized flow: cycle
    estimation → fragmentation → fragment scheduling → binding on
    prepared timing state, under one [config], returning the
    {!Hls_util.Failure} taxonomy instead of an escaping exception —
    [Error (Infeasible _)] for points that cannot exist (Mobility's
    witnessed budget violation, a fragment schedule with no legal
    placement), [Error (Resource _ | Internal _)] for faults a caller may
    retry.  Reuses the prepared net and arrival, so a latency sweep pays
    for them once per graph. *)
val run :
  config -> prepared -> latency:int ->
  (optimized_result, Hls_util.Failure.t) result

(** Like {!run} with iteration forced on (at least one round even when
    [config.iterate = 0]), returning the per-round audit alongside the
    result — the [iterate] verb's entry point. *)
val run_iterated :
  config -> prepared -> latency:int ->
  (optimized_result * Hls_iter.Iter.outcome, Hls_util.Failure.t) result

(** {!prepare} (honouring [config.transform] and [config.verify]) +
    {!run} from a bare behavioural graph; preparation faults are
    classified too. *)
val run_graph :
  config -> Hls_dfg.Graph.t -> latency:int ->
  (optimized_result, Hls_util.Failure.t) result

(** Classify an exception escaping one of this module's flows into the
    shared taxonomy (infeasibility recognized as permanent). *)
val classify_exn : exn -> Hls_util.Failure.t

(** End-to-end functional check: the transformed, scheduled specification
    still computes the original behaviour. *)
val check_optimized_equivalence :
  ?trials:int -> ?seed:int -> Hls_dfg.Graph.t -> optimized_result ->
  (unit, string) result

(** The dual problem: given a clock-period target in ns, find the smallest
    latency whose fragmented schedule meets it and run the optimized flow
    there; [None] when the period is below the sequential overhead. *)
val optimized_for_cycle :
  ?lib:Hls_techlib.t -> Hls_dfg.Graph.t -> target_ns:float ->
  (int * optimized_result) option

(** The latency a conventional tool would pick when free to choose: the
    ASAP schedule length at the tightest single-operation cycle. *)
val free_floating_latency : Hls_dfg.Graph.t -> int

val pct_saved : original:float -> optimized:float -> float
val pp_report : Format.formatter -> report -> unit
