(* Table III workload: the three ADPCM G.721 decoder modules, each
   synthesized at the latency a conventional tool would pick in
   free-floating mode, then at that same latency with the presynthesis
   transformation — and the optimized IAQ emitted as RTL VHDL. *)

module P = Hls_core.Pipeline

(* The deprecated [P.optimized] wrapper collapsed into [Pipeline.run];
   unwrap the result the way the old entry point did. *)
let optimized ?lib ?policy ?balance ?cleanup g ~latency =
  match
    P.run_graph (P.make_config ?lib ?policy ?balance ?cleanup ()) g ~latency
  with
  | Ok r -> r
  | Error f -> raise (Hls_util.Failure.Flow_failure f)

let () =
  print_endline "== ADPCM decoder modules (Table III)";
  List.iter
    (fun (name, graph, paper_latency) ->
      let free = P.free_floating_latency graph in
      let latency = paper_latency in
      let conv = P.conventional graph ~latency in
      let opt = optimized graph ~latency in
      let r = opt.P.opt_report in
      Format.printf
        "%-10s λ=%-2d (free-floating would pick %d): cycle %5.2f -> %5.2f ns \
         (saved %4.1f %%), datapath %5d -> %5d gates@."
        name latency free conv.P.cycle_ns r.P.cycle_ns
        (P.pct_saved ~original:conv.P.cycle_ns ~optimized:r.P.cycle_ns)
        (Hls_alloc.Datapath.datapath_gates Hls_techlib.default conv.P.datapath)
        (Hls_alloc.Datapath.datapath_gates Hls_techlib.default r.P.datapath);
      match P.check_optimized_equivalence ~trials:40 graph opt with
      | Ok () -> ()
      | Error m -> failwith (name ^ ": " ^ m))
    (Hls_workloads.Adpcm.table3_set ());

  print_endline "\n== one concrete IAQ decode through the scheduled RTL";
  let graph = Hls_workloads.Adpcm.iaq () in
  let opt = optimized graph ~latency:3 in
  let inputs =
    [
      ("dqln", Hls_bitvec.of_int ~width:12 137);
      ("y", Hls_bitvec.of_int ~width:13 1720);
      ("antilog", Hls_bitvec.of_int ~width:12 260);
      ("sign", Hls_bitvec.of_int ~width:1 1);
    ]
  in
  let behavioural = Hls_sim.outputs graph ~inputs in
  let rtl = Hls_rtl.Cycle_sim.run_fragment opt.P.schedule ~inputs in
  Format.printf "dq (behavioural) = %d, dq (RTL, 3 cycles) = %d@."
    (Hls_bitvec.to_signed_int (List.assoc "dq" behavioural))
    (Hls_bitvec.to_signed_int (List.assoc "dq" rtl.Hls_rtl.Cycle_sim.fr_outputs));

  print_endline "\n== RTL VHDL of the optimized IAQ (first 40 lines)";
  let vhdl = Hls_rtl.Rtl_vhdl.emit opt.P.schedule in
  String.split_on_char '\n' vhdl
  |> Hls_util.List_ext.take 40
  |> List.iter print_endline;
  print_endline "..."
