(* The fifth-order elliptic wave filter through the full flow at the
   paper's three Table-II latencies, plus a functional demonstration: the
   transformed datapath filters an actual waveform, one λ-cycle iteration
   per sample, with the state variables fed back externally. *)

module P = Hls_core.Pipeline

(* The deprecated [P.optimized] wrapper collapsed into [Pipeline.run];
   unwrap the result the way the old entry point did. *)
let optimized ?lib ?policy ?balance ?cleanup g ~latency =
  match
    P.run_graph (P.make_config ?lib ?policy ?balance ?cleanup ()) g ~latency
  with
  | Ok r -> r
  | Error f -> raise (Hls_util.Failure.Flow_failure f)
module Bv = Hls_bitvec

let () =
  let graph = Hls_workloads.Benchmarks.elliptic () in
  Format.printf "elliptic wave filter: %d operations, critical path %d delta@."
    (Hls_dfg.Graph.behavioural_op_count graph)
    (Hls_timing.Critical_path.critical_delta (Hls_kernel.Extract.run graph));

  print_endline "\n== Table II rows (elliptic)";
  List.iter
    (fun latency ->
      let conv = P.conventional graph ~latency in
      let opt = optimized graph ~latency in
      let r = opt.P.opt_report in
      Format.printf
        "λ=%-2d  cycle %6.2f -> %5.2f ns (saved %4.1f %%)   fragments: %d@."
        latency conv.P.cycle_ns r.P.cycle_ns
        (P.pct_saved ~original:conv.P.cycle_ns ~optimized:r.P.cycle_ns)
        r.P.op_count;
      match P.check_optimized_equivalence ~trials:20 graph opt with
      | Ok () -> ()
      | Error m -> failwith ("equivalence: " ^ m))
    [ 11; 6; 4 ];

  print_endline "\n== filtering a waveform through the optimized datapath";
  let latency = 6 in
  let opt = optimized graph ~latency in
  (* Drive a step + tone mixture through 24 iterations; states start at 0
     and are fed back from the outputs each sample. *)
  let state = Array.make 7 (Bv.zero 16) in
  let out_names = [ "sv1_next"; "sv2_next"; "sv3_next"; "sv4_next" ] in
  let samples =
    List.init 24 (fun k ->
        let v =
          (2000. *. sin (float_of_int k /. 3.)) +. if k >= 8 then 4000. else 0.
        in
        int_of_float v)
  in
  List.iteri
    (fun k sample ->
      let inputs =
        ("inp", Bv.of_int ~width:16 sample)
        :: List.mapi
             (fun i v -> (Printf.sprintf "sv%d" (i + 1), v))
             (Array.to_list state)
      in
      (* One hardware iteration = λ clock cycles of the scheduled RTL. *)
      let run = Hls_rtl.Cycle_sim.run_fragment opt.P.schedule ~inputs in
      let out = List.assoc "out" run.Hls_rtl.Cycle_sim.fr_outputs in
      (* Feed the four updated state outputs back (the remaining three
         state variables hold their ladder values). *)
      List.iteri
        (fun i name ->
          state.(i) <- List.assoc name run.Hls_rtl.Cycle_sim.fr_outputs)
        out_names;
      if k mod 4 = 0 then
        Format.printf "sample %2d: in %6d  out %6d@." k sample
          (Bv.to_signed_int out))
    samples;

  print_endline "\n== cost breakdown at λ=6";
  let conv = P.conventional graph ~latency in
  Format.printf "conventional: %a@." Hls_alloc.Datapath.pp_area conv.P.area;
  Format.printf "optimized:    %a@." Hls_alloc.Datapath.pp_area
    opt.P.opt_report.P.area
