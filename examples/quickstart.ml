(* Quickstart: the paper's motivational example end to end.

   Parses the Fig. 1a behavioural specification from source text, runs the
   three-phase presynthesis transformation for a 3-cycle schedule, prints
   the transformed specification (the Fig. 2a shape), the fragment
   schedule, and the Table-I-style comparison — then double-checks by
   bit-true simulation that the transformed circuit still adds. *)

module P = Hls_core.Pipeline

(* The deprecated [P.optimized] wrapper collapsed into [Pipeline.run];
   unwrap the result the way the old entry point did. *)
let optimized ?lib ?policy ?balance ?cleanup g ~latency =
  match
    P.run_graph (P.make_config ?lib ?policy ?balance ?cleanup ()) g ~latency
  with
  | Ok r -> r
  | Error f -> raise (Hls_util.Failure.Flow_failure f)

let spec_source =
  {|
# Three data-dependent 16-bit additions (paper, Fig. 1a).
module example;
input A : 16;
input B : 16;
input D : 16;
input F : 16;
output G : 16;
var C : 16;
var E : 16;
C = A + B;
E = C + D;
G = E + F;
end
|}

let () =
  print_endline "== 1. parse the behavioural specification";
  let graph =
    match Hls_speclang.Elaborate.from_string_result spec_source with
    | Ok g -> g
    | Error m -> failwith m
  in
  Format.printf "parsed %d operations over %d input ports@."
    (Hls_dfg.Graph.behavioural_op_count graph)
    (List.length graph.Hls_dfg.Graph.inputs);

  print_endline "\n== 2. transform for a 3-cycle schedule";
  let latency = 3 in
  let opt = optimized graph ~latency in
  let plan = opt.P.transformed.Hls_fragment.Transform.plan in
  Format.printf
    "critical path: %d chained 1-bit additions; estimated cycle: %d@."
    plan.Hls_fragment.Mobility.critical plan.Hls_fragment.Mobility.n_bits;
  print_endline "\ntransformed specification:";
  print_string (Hls_speclang.Emit.emit opt.P.transformed.Hls_fragment.Transform.graph);

  print_endline "\n== 3. conventional schedule of the fragments";
  for cycle = 1 to latency do
    let adds = Hls_sched.Frag_sched.adds_in_cycle opt.P.schedule cycle in
    Format.printf "cycle %d: %s@." cycle
      (String.concat ", " (List.map (fun n -> n.Hls_dfg.Types.label) adds))
  done;

  print_endline "\n== 4. compare against the conventional and BLC flows";
  let conv = P.conventional graph ~latency in
  let blc = P.blc graph ~latency:1 in
  Format.printf "%a@.@.%a@.@.%a@." P.pp_report conv P.pp_report blc
    P.pp_report opt.P.opt_report;

  print_endline "\n== 5. verify bit-true equivalence";
  (match P.check_optimized_equivalence ~trials:200 graph opt with
  | Ok () -> print_endline "transformed specification is bit-true: OK"
  | Error m -> failwith m);

  (* And one concrete vector, end to end through the cycle-accurate RTL. *)
  let mk v = Hls_bitvec.of_int ~width:16 v in
  let inputs = [ ("A", mk 11111); ("B", mk 22222); ("D", mk 3333); ("F", mk 7) ] in
  let rtl = Hls_rtl.Cycle_sim.run_fragment opt.P.schedule ~inputs in
  Format.printf "RTL run: G = %d (expected %d)@."
    (Hls_bitvec.to_int (List.assoc "G" rtl.Hls_rtl.Cycle_sim.fr_outputs))
    ((11111 + 22222 + 3333 + 7) land 0xFFFF);

  print_endline "\n== 6. all the way down: gate-level netlist";
  let netlist = Hls_rtl.Elaborate_netlist.elaborate opt.P.schedule in
  let stats = Hls_rtl.Netlist.stats netlist in
  Format.printf
    "elaborated %d full adders, %d muxes, %d flip-flops, %d logic cells@."
    stats.Hls_rtl.Netlist.n_fa stats.Hls_rtl.Netlist.n_mux
    stats.Hls_rtl.Netlist.n_dff stats.Hls_rtl.Netlist.n_logic;
  let gates = Hls_rtl.Netlist.run netlist ~cycles:3 ~inputs in
  Format.printf "gate-level run over 3 clock cycles: G = %d@."
    (Hls_bitvec.to_int (List.assoc "G" gates))
