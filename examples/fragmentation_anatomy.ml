(* Anatomy of the transformation on the paper's Fig. 3 DFG: prints the
   bit-level arrival/deadline tables, the per-operation fragments with
   their mobilities (the paper's Figs. 3 c-f), the scheduled result
   (Fig. 3 g) and the final comparison (Fig. 3 h) — a guided tour of every
   phase for readers following along with the paper. *)

module Arrival = Hls_timing.Arrival
module Deadline = Hls_timing.Deadline
module Mobility = Hls_fragment.Mobility
module Frag_sched = Hls_sched.Frag_sched
module P = Hls_core.Pipeline

(* The deprecated [P.optimized] wrapper collapsed into [Pipeline.run];
   unwrap the result the way the old entry point did. *)
let optimized ?lib ?policy ?balance ?cleanup g ~latency =
  match
    P.run_graph (P.make_config ?lib ?policy ?balance ?cleanup ()) g ~latency
  with
  | Ok r -> r
  | Error f -> raise (Hls_util.Failure.Flow_failure f)

let () =
  let g = Hls_workloads.Motivational.fig3 () in
  let latency = 3 in
  print_endline "== the DFG (paper Fig. 3a)";
  Format.printf "%a@." Hls_dfg.Graph.pp g;

  let critical = Hls_timing.Critical_path.critical_delta g in
  let n_bits =
    Hls_timing.Critical_path.cycle_delta_for_latency ~critical ~latency
  in
  Format.printf
    "@.== phase 2: critical path %d delta; for latency %d the cycle is \
     ceil(%d/%d) = %d chained 1-bit additions@."
    critical latency critical latency n_bits;

  print_endline "\n== bit-level arrival (ASAP) and deadline (ALAP) slots";
  let arr = Arrival.compute g in
  let dl = Deadline.compute g ~total_slots:(latency * n_bits) in
  Printf.printf "%-4s %-28s %s\n" "op" "arrival slots (bit 0 first)"
    "deadline slots";
  Hls_dfg.Graph.iter_nodes
    (fun n ->
      let id = n.Hls_dfg.Types.id in
      let slots f =
        String.concat " "
          (List.map
             (fun bit -> string_of_int (f ~id ~bit))
             (Hls_util.List_ext.range 0 n.Hls_dfg.Types.width))
      in
      Printf.printf "%-4s %-28s %s\n" n.Hls_dfg.Types.label
        (slots (fun ~id ~bit -> Arrival.slot arr ~id ~bit))
        (slots (fun ~id ~bit -> Deadline.slot dl ~id ~bit)))
    g;

  let sl =
    Hls_timing.Critical_path.slack_summary g ~total_slots:(latency * n_bits)
  in
  Format.printf
    "slack: %d of %d bits are critical (zero slack); max slack %d delta@."
    sl.Hls_timing.Critical_path.sl_zero
    sl.Hls_timing.Critical_path.sl_total_bits
    sl.Hls_timing.Critical_path.sl_max;

  print_endline
    "\n== phase 3: fragments and their mobilities (paper Figs. 3 c-f)";
  let plan = Mobility.compute g ~latency in
  Hls_dfg.Graph.iter_nodes
    (fun n ->
      let frags = plan.Mobility.per_node.(n.Hls_dfg.Types.id) in
      let show (f : Mobility.frag) =
        if Mobility.is_fixed f then
          Printf.sprintf "%s[%d:%d]@cycle%d" n.Hls_dfg.Types.label f.f_hi
            f.f_lo f.f_asap
        else
          Printf.sprintf "%s[%d:%d] mobile %d..%d" n.Hls_dfg.Types.label
            f.f_hi f.f_lo f.f_asap f.f_alap
      in
      Printf.printf "%-4s -> %s\n" n.Hls_dfg.Types.label
        (String.concat ", " (List.map show frags)))
    g;

  print_endline "\n== conventional schedule of the fragments (paper Fig. 3g)";
  let opt = optimized g ~latency in
  for cycle = 1 to latency do
    Printf.printf "cycle %d: %s\n" cycle
      (String.concat ", "
         (List.map
            (fun n -> n.Hls_dfg.Types.label)
            (Frag_sched.adds_in_cycle opt.P.schedule cycle)))
  done;
  Printf.printf "achieved chain per cycle: %d delta (budget %d)\n"
    (Frag_sched.used_delta opt.P.schedule)
    n_bits;

  print_endline "\n== comparison (paper Fig. 3h)";
  let conv = P.conventional g ~latency in
  Format.printf "conventional: %a@." Hls_alloc.Datapath.pp_area conv.P.area;
  Format.printf "optimized:    %a@." Hls_alloc.Datapath.pp_area
    opt.P.opt_report.P.area;
  Format.printf "cycle %.2f -> %.2f ns (%.1f %% saved; paper: 62 %%)@."
    conv.P.cycle_ns opt.P.opt_report.P.cycle_ns
    (P.pct_saved ~original:conv.P.cycle_ns
       ~optimized:opt.P.opt_report.P.cycle_ns)
