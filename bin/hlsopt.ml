(* hlsopt — command-line driver for the operation-fragmentation HLS flow.

   Every data subcommand is a thin client of Hls_api: it builds an
   Api.Request, executes it — in-process by default, or on a running
   `hlsopt serve` daemon with --connect — and prints the payload through
   Api.Render.  The CLI, the server and the tests therefore share one
   code path per verb, and `hlsopt report X` output is byte-identical
   whether it ran locally or over the socket.

   Subcommands:
     parse       parse and validate a specification, print its statistics
     optimize    run the presynthesis transformation, print the new spec
     transform   apply a behavioural rewrite recipe, print plan log + graph
     schedule    schedule with a chosen flow and print the cycle assignment
     report      compare the conventional / BLC / optimized flows
     explore     sweep the design space and print its Pareto frontier
     emit-vhdl   print behavioural or RTL VHDL
     emit-verilog  print the gate-level netlist as structural Verilog
     simulate    run one random vector through the gate-level netlist
     iterate     feedback-iterate the schedule: re-time the critical region
     stats       print serving-tier gauges (router fleet or executor)
     serve       run the request daemon (Unix-domain socket or --stdio)
     call        raw NDJSON passthrough to a daemon
     workloads   list the workload catalog (name, kind, tags, defaults)
     list        alias of workloads, first columns only (kept for scripts)
     fuzz        coverage-directed differential fuzzing of the toolchain
     trace-validate  structural checks over a --trace JSON file

   Exit codes (documented in docs/API.md): 0 success, 2 usage error,
   3 infeasible design point, 4 timeout, 5 resource exhaustion,
   6 server overloaded, 7 internal fault. *)

module Api = Hls_api
module Req = Hls_api.Request
module Resp = Hls_api.Response

let usage_die m =
  prerr_endline ("hlsopt: " ^ m);
  exit 2

let or_die = function Ok v -> v | Error m -> usage_die m

(* Build the request's spec: a file is read here and shipped as inline
   source, so the same request works locally and against a daemon that
   has no access to our filesystem. *)
let spec_of ~file ~builtin =
  match (file, builtin) with
  | Some path, None -> (
      match
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | src -> Req.Source src
      | exception Sys_error m -> usage_die m)
  | None, Some name -> Req.Builtin name
  | Some _, Some _ -> usage_die "give either a file or --builtin, not both"
  | None, None -> usage_die "give a specification file or --builtin NAME"

(* A transport failure is the daemon's problem, not the caller's: exit
   through Unavailable (8, retryable) so scripts can tell a dead fleet
   from their own usage errors. *)
let transport_die m =
  prerr_endline ("hlsopt: connect: " ^ m);
  exit (Resp.exit_code (Resp.Unavailable m))

(* Execute a request: in-process through Exec, or on a daemon.  Flow
   errors exit through the taxonomy's code so scripts can tell an
   impossible design point (3) from a tool fault (7). *)
let payload_or_die ?cache connect req =
  let result =
    match connect with
    | Some socket -> (
        match Hls_server.Client.call ~socket req with
        | Ok resp -> resp.Resp.result
        | Error m -> transport_die m)
    | None ->
        let exec = Api.Exec.create ?cache () in
        Fun.protect
          ~finally:(fun () -> Api.Exec.close exec)
          (fun () -> Api.Exec.run exec req)
  in
  match result with
  | Ok p -> p
  | Error e ->
      prerr_endline ("hlsopt: " ^ Resp.error_message e);
      exit (Resp.exit_code e)

open Cmdliner

(* --trace / --metrics ride on every subcommand. *)
let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON of this run; load it at \
                 ui.perfetto.dev or chrome://tracing.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print a span/counter/gauge summary on stderr when done.")

let telemetry_term = Term.(const (fun t m -> (t, m)) $ trace_arg $ metrics_arg)

(* Arm the sink per the flags, run the command, export on the way out.
   [arm_metrics] arms metric recording even without --metrics (explore
   needs span totals for its phase-breakdown footer) but prints the
   summary only when asked.  Exporting sits in the [Fun.protect]
   finaliser so a command that exits through the taxonomy still leaves
   its trace behind, which is exactly when one is wanted. *)
let with_telemetry ?(arm_metrics = false) (trace, metrics) f =
  if trace <> None || metrics || arm_metrics then begin
    Hls_telemetry.arm ~trace:(trace <> None) ~metrics:true ();
    Hls_telemetry.name_track "main"
  end;
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | Some path ->
          Hls_telemetry.write_chrome_trace path;
          Printf.eprintf "hlsopt: trace written to %s\n%!" path
      | None -> ());
      if metrics then prerr_string (Hls_telemetry.metrics_summary ()))
    f

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Specification source file.")

let builtin_arg =
  Arg.(value & opt (some string) None & info [ "builtin"; "b" ] ~docv:"NAME"
         ~doc:"Use a built-in workload instead of a file.")

let latency_arg =
  Arg.(value & opt int 3 & info [ "latency"; "l" ] ~docv:"CYCLES"
         ~doc:"Target latency in clock cycles.")

let connect_arg =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"SOCK"
           ~doc:"Execute on a running 'hlsopt serve' daemon at this \
                 Unix-domain socket instead of in-process.")

let parse_cmd =
  let run tel connect file builtin =
    with_telemetry tel @@ fun () ->
    let req = Req.Parse { spec = spec_of ~file ~builtin } in
    print_string (Api.Render.to_text (payload_or_die connect req))
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and validate a specification")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg)

let optimize_cmd =
  let run tel connect file builtin latency vhdl =
    with_telemetry tel @@ fun () ->
    let req =
      Req.Optimize
        {
          spec = spec_of ~file ~builtin;
          latency;
          config = Req.default_config;
          vhdl;
        }
    in
    print_string (Api.Render.to_text (payload_or_die connect req))
  in
  let vhdl_arg =
    Arg.(value & flag & info [ "vhdl" ] ~doc:"Emit VHDL instead of the \
                                              specification language.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the presynthesis transformation and print the new spec")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ latency_arg $ vhdl_arg)

let schedule_cmd =
  let run tel connect file builtin latency flow =
    with_telemetry tel @@ fun () ->
    let flow =
      match Req.flow_of_name flow with
      | Some f -> f
      | None -> usage_die ("unknown flow " ^ flow)
    in
    let req =
      Req.Schedule
        {
          spec = spec_of ~file ~builtin;
          latency;
          flow;
          config = Req.default_config;
        }
    in
    print_string (Api.Render.to_text (payload_or_die connect req))
  in
  let flow_arg =
    Arg.(value & opt string "optimized"
         & info [ "flow"; "f" ] ~docv:"FLOW"
             ~doc:"Flow: conventional, blc or optimized.")
  in
  Cmd.v (Cmd.info "schedule" ~doc:"Schedule and print the cycle assignment")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ latency_arg $ flow_arg)

(* Shared by report and transform: recipe / verify-policy options.  A
   recipe spec is passes joined by ',' or '+' (use '+' where a comma
   would clash with another list, e.g. explore's --recipes axis), a
   preset name, or repeat(...) around either. *)
let transform_doc =
  "Behavioural transformation recipe: passes joined by ',' or '+', a \
   preset (none, cleanup, standard, aggressive) or repeat(...)."

let verify_doc =
  "Equivalence gate on the recipe's passes: off, sampled or every_pass."

let report_cmd =
  let run tel connect file builtin latency transform verify cleanup target_ns =
    with_telemetry tel @@ fun () ->
    let transform =
      if not cleanup then transform
      else if transform = "none" then "cleanup"
      else usage_die "give --transform or the deprecated --cleanup, not both"
    in
    let req =
      Req.Report
        {
          spec = spec_of ~file ~builtin;
          latency;
          config = { Req.default_config with transform; verify };
          target_ns;
        }
    in
    print_string (Api.Render.to_text (payload_or_die connect req))
  in
  let transform_arg =
    Arg.(value & opt string "none"
         & info [ "transform"; "t" ] ~docv:"RECIPE" ~doc:transform_doc)
  in
  let verify_arg =
    Arg.(value & opt string "off"
         & info [ "verify" ] ~docv:"POLICY" ~doc:verify_doc)
  in
  let cleanup_arg =
    Arg.(value & flag & info [ "cleanup" ]
           ~doc:"Deprecated alias for --transform cleanup.")
  in
  let target_arg =
    Arg.(value & opt (some float) None
         & info [ "target-ns" ] ~docv:"NS"
             ~doc:"Pick the smallest latency meeting this clock period \
                   instead of --latency.")
  in
  Cmd.v (Cmd.info "report" ~doc:"Compare the conventional and optimized flows")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ latency_arg $ transform_arg $ verify_arg $ cleanup_arg
          $ target_arg)

let transform_cmd =
  let run tel connect file builtin recipe verify =
    with_telemetry tel @@ fun () ->
    let req =
      Req.Transform { spec = spec_of ~file ~builtin; recipe; verify }
    in
    print_string (Api.Render.to_text (payload_or_die connect req))
  in
  let recipe_arg =
    Arg.(value & opt string "standard"
         & info [ "recipe"; "r" ] ~docv:"RECIPE" ~doc:transform_doc)
  in
  let verify_arg =
    Arg.(value & opt string "every_pass"
         & info [ "verify" ] ~docv:"POLICY" ~doc:verify_doc)
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:"Apply a verified behavioural transformation recipe and print \
             the plan log and the rewritten graph")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ recipe_arg $ verify_arg)

let emit_vhdl_cmd =
  let run tel connect file builtin latency rtl netlist =
    with_telemetry tel @@ fun () ->
    let format =
      if netlist then Req.Vhdl_netlist else if rtl then Req.Vhdl_rtl
      else Req.Vhdl
    in
    let req =
      Req.Emit
        {
          spec = spec_of ~file ~builtin;
          latency;
          format;
          config = Req.default_config;
        }
    in
    print_string (Api.Render.to_text (payload_or_die connect req))
  in
  let rtl_arg =
    Arg.(value & flag & info [ "rtl" ]
           ~doc:"Emit the scheduled RTL (FSM + datapath) instead of the \
                 behavioural source.")
  in
  let netlist_arg =
    Arg.(value & flag & info [ "netlist" ]
           ~doc:"Emit the gate-level structural netlist.")
  in
  Cmd.v (Cmd.info "emit-vhdl" ~doc:"Print VHDL")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ latency_arg $ rtl_arg $ netlist_arg)

let emit_verilog_cmd =
  let run tel connect file builtin latency testbench =
    with_telemetry tel @@ fun () ->
    let format = if testbench then Req.Verilog_tb else Req.Verilog in
    let req =
      Req.Emit
        {
          spec = spec_of ~file ~builtin;
          latency;
          format;
          config = Req.default_config;
        }
    in
    print_string (Api.Render.to_text (payload_or_die connect req))
  in
  let tb_arg =
    Arg.(value & flag & info [ "testbench" ]
           ~doc:"Also emit a self-checking testbench with golden vectors.")
  in
  Cmd.v
    (Cmd.info "emit-verilog"
       ~doc:"Print the gate-level netlist as structural Verilog")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ latency_arg $ tb_arg)

let simulate_cmd =
  let run tel connect file builtin latency vcd_path seed =
    with_telemetry tel @@ fun () ->
    let req =
      Req.Simulate
        {
          spec = spec_of ~file ~builtin;
          latency;
          seed;
          config = Req.default_config;
          vcd = vcd_path <> None;
        }
    in
    let payload = payload_or_die connect req in
    print_string (Api.Render.to_text payload);
    match (payload, vcd_path) with
    | Resp.Simulated { sim_vcd = Some vcd; _ }, Some path ->
        let oc = open_out path in
        output_string oc vcd;
        close_out oc;
        Format.printf "waveform written to %s@." path
    | _ -> ()
  in
  let vcd_arg =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"FILE" ~doc:"Write a VCD waveform.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the random input vector.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run one random vector through the gate-level netlist")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ latency_arg $ vcd_arg $ seed_arg)

let iterate_cmd =
  let run tel connect file builtin latency rounds transform verify =
    with_telemetry tel @@ fun () ->
    let req =
      Req.Iterate
        {
          spec = spec_of ~file ~builtin;
          latency;
          rounds;
          config = { Req.default_config with transform; verify };
        }
    in
    print_string (Api.Render.to_text (payload_or_die connect req))
  in
  let rounds_arg =
    Arg.(value & opt int 8
         & info [ "rounds"; "r" ] ~docv:"N"
             ~doc:"Accepted-round budget of the feedback loop.")
  in
  let transform_arg =
    Arg.(value & opt string "none"
         & info [ "transform"; "t" ] ~docv:"RECIPE" ~doc:transform_doc)
  in
  let verify_arg =
    Arg.(value & opt string "off"
         & info [ "verify" ] ~docv:"POLICY" ~doc:verify_doc)
  in
  Cmd.v
    (Cmd.info "iterate"
       ~doc:"Schedule, then feedback-iterate: extract the critical region \
             and re-time it at one cycle fewer until convergence")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ latency_arg $ rounds_arg $ transform_arg $ verify_arg)

let stats_cmd =
  let run tel connect =
    with_telemetry tel @@ fun () ->
    print_string (Api.Render.to_text (payload_or_die connect Req.Stats))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print serving-tier gauges: fleet counters from a router, or \
             executor-process gauges from a daemon / in-process run")
    Term.(const run $ telemetry_term $ connect_arg)

(* Both listings execute the same Workloads request; "list" is the
   pre-catalog spelling kept for scripts, printing the same leading
   columns as before. *)
let workloads_cmd =
  let run tel connect tag json =
    with_telemetry tel @@ fun () ->
    let payload = payload_or_die connect (Req.Workloads { tag }) in
    if json then
      print_endline
        (Hls_dse.Dse_json.to_string ~indent:true
           (Resp.payload_to_json payload))
    else print_string (Api.Render.to_text payload)
  in
  let tag_arg =
    Arg.(value & opt (some string) None
         & info [ "tag" ] ~docv:"TAG"
             ~doc:"Only list workloads carrying this tag.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the catalog as JSON.")
  in
  Cmd.v
    (Cmd.info "workloads"
       ~doc:"List the workload catalog: name, size, kind, default latency \
             and tags")
    Term.(const run $ telemetry_term $ connect_arg $ tag_arg $ json_arg)

let list_cmd =
  let run tel connect =
    with_telemetry tel @@ fun () ->
    print_string
      (Api.Render.to_text (payload_or_die connect (Req.Workloads { tag = None })))
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workloads (alias of 'workloads')")
    Term.(const run $ telemetry_term $ connect_arg)

let fuzz_cmd =
  let run tel connect seed budget lanes dir max_seconds json =
    with_telemetry tel @@ fun () ->
    let payload =
      payload_or_die connect (Req.Fuzz { seed; budget; lanes; dir; max_seconds })
    in
    (if json then
       print_endline
         (Hls_dse.Dse_json.to_string ~indent:true
            (Resp.payload_to_json payload))
     else print_string (Api.Render.to_text payload));
    match payload with
    | Resp.Fuzzed f when f.Resp.fz_mismatches > 0 -> exit 1
    | _ -> ()
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
  in
  let budget_arg =
    Arg.(value & opt int 200
         & info [ "budget" ] ~docv:"CASES"
             ~doc:"Total case budget, split across the selected lanes.")
  in
  let lanes_arg =
    Arg.(value & opt (list string) []
         & info [ "lanes" ] ~docv:"LANES"
             ~doc:"Comma-separated lanes to run: spec, diff, codec.  \
                   Default: all three.")
  in
  let dir_arg =
    Arg.(value & opt string "_fuzz"
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Directory for shrunk repro files.")
  in
  let max_seconds_arg =
    Arg.(value & opt float 120.
         & info [ "max-seconds" ] ~docv:"S"
             ~doc:"Wall-clock bound for the whole run.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: generated specs through every transform \
             preset and the scheduled flow, plus wire-codec round trips.  \
             Exits 1 if any lane found a mismatch.")
    Term.(const run $ telemetry_term $ connect_arg $ seed_arg $ budget_arg
          $ lanes_arg $ dir_arg $ max_seconds_arg $ json_arg)

let explore_cmd =
  let module Dse = Hls_dse in
  let run tel connect file builtin latspec policies libs balance recipes
      iterates verify cleanup jobs timeout cache_path feedback retries backoff
      degrade resume json =
    (* The sweep always arms metric recording: its report carries the
       per-phase time breakdown whether or not --metrics was given. *)
    with_telemetry ~arm_metrics:true tel @@ fun () ->
    let latencies = or_die (Dse.Space.parse_latencies latspec) in
    let policies =
      match policies with
      | "both" -> [ `Full; `Coalesced ]
      | s -> (
          match Dse.Space.policy_of_name s with
          | Some p -> [ p ]
          | None -> usage_die (Printf.sprintf "unknown policy %S" s))
    in
    let lib_names =
      match libs with
      | "both" -> List.map fst Dse.Space.known_libs
      | s -> [ s ]
    in
    let bools ~name spec =
      match spec with
      | "both" -> Ok [ true; false ]
      | "on" -> Ok [ true ]
      | "off" -> Ok [ false ]
      | s -> Error (Printf.sprintf "bad %s %S (use on, off or both)" name s)
    in
    let balance = or_die (bools ~name:"--balance" balance) in
    (* --recipes is the axis; within one axis value join passes with '+'
       (commas separate axis values here).  --cleanup survives as a
       deprecated translation onto the cleanup preset. *)
    let recipes =
      match (recipes, cleanup) with
      | "", "off" -> [ "none" ]
      | "", spec ->
          List.map
            (fun on -> if on then "cleanup" else "none")
            (or_die (bools ~name:"--cleanup" spec))
      | spec, "off" -> Hls_xform.Recipe.split_specs spec
      | _, _ ->
          usage_die "give --recipes or the deprecated --cleanup, not both"
    in
    if connect <> None && (cache_path <> None || resume) then
      usage_die "--cache/--resume are daemon-side state; drop them with \
                 --connect (start the daemon with --cache instead)";
    if resume && cache_path = None then
      usage_die "--resume needs --cache FILE (the journal to replay)";
    let cache =
      match cache_path with
      | None -> None
      | Some path -> (
          match Dse.Cache.create ~path () with
          | c -> Some c
          | exception Dse.Cache.Locked lock ->
              usage_die
                (Printf.sprintf
                   "cache is locked by another live sweep (%s); wait for it \
                    or remove the lock if you are sure"
                   lock))
    in
    (match cache with
    | None -> ()
    | Some cache ->
        (match Dse.Cache.load_warnings cache with
        | [] -> ()
        | ws ->
            Printf.eprintf
              "hlsopt: cache loaded with %d warning%s (damaged entries will \
               recompute): %s\n%!"
              (List.length ws)
              (if List.length ws = 1 then "" else "s")
              (String.concat "; " ws));
        if resume then
          Printf.eprintf
            "hlsopt: resuming: %d point%s recovered from the journal, %d in \
             the store\n%!"
            (Dse.Cache.recovered cache)
            (if Dse.Cache.recovered cache = 1 then "" else "s")
            (Dse.Cache.length cache - Dse.Cache.recovered cache))
    ;
    let params =
      {
        Req.latencies;
        policies;
        lib_names;
        balance_axis = balance;
        recipes;
        iterates;
        verify;
        jobs = (if jobs <= 0 then None else Some jobs);
        timeout_s = timeout;
        feedback;
        retries;
        backoff_s = backoff;
        degrade;
      }
    in
    let req = Req.Explore { spec = spec_of ~file ~builtin; params } in
    match payload_or_die ?cache connect req with
    | Resp.Explored result ->
        if json then
          print_endline
            (Dse.Dse_json.to_string ~indent:true (Dse.Explore.to_json result))
        else Format.printf "%a" Dse.Explore.pp result
    | _ -> usage_die "server returned a non-explore payload"
  in
  let latency_arg =
    Arg.(value & opt string "2:6"
         & info [ "latency"; "l" ] ~docv:"RANGE"
             ~doc:"Latency axis: N, LO:HI, LO:HI:STEP or a comma list.")
  in
  let policies_arg =
    Arg.(value & opt string "full"
         & info [ "policies" ] ~docv:"P"
             ~doc:"Fragmentation policies: full, coalesced or both.")
  in
  let libs_arg =
    Arg.(value & opt string "ripple"
         & info [ "libs" ] ~docv:"L"
             ~doc:"Technology libraries: ripple, cla or both.")
  in
  let balance_arg =
    Arg.(value & opt string "on"
         & info [ "balance" ] ~docv:"B"
             ~doc:"Scheduler balancing axis: on, off or both.")
  in
  let recipes_arg =
    Arg.(value & opt string ""
         & info [ "recipes" ] ~docv:"SPECS"
             ~doc:"Transformation-recipe axis: comma-separated recipe specs \
                   (join passes inside one recipe with '+', e.g. \
                   none,standard,fold+cse+dce).")
  in
  let iterate_arg =
    Arg.(value & opt (list int) [ 0 ]
         & info [ "iterate" ] ~docv:"N,..."
             ~doc:"Feedback-iteration budget axis: accepted-round budgets \
                   to sweep (0 = one-shot scheduling).")
  in
  let verify_arg =
    Arg.(value & opt string "off"
         & info [ "verify" ] ~docv:"POLICY" ~doc:verify_doc)
  in
  let cleanup_arg =
    Arg.(value & opt string "off"
         & info [ "cleanup" ] ~docv:"C"
             ~doc:"Deprecated: presynthesis cleanup axis (on, off or both); \
                   use --recipes none,cleanup instead.")
  in
  let jobs_arg =
    Arg.(value & opt int 0
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains (0 = auto, 1 = serial).")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"S" ~doc:"Per-job timeout in seconds.")
  in
  let cache_arg =
    Arg.(value & opt (some string) None
         & info [ "cache" ] ~docv:"FILE"
             ~doc:"JSON cache file for incremental re-runs.")
  in
  let feedback_arg =
    Arg.(value & opt int 0
         & info [ "feedback" ] ~docv:"N"
             ~doc:"Feedback rounds refining the latency axis around the \
                   frontier.")
  in
  let retries_arg =
    Arg.(value & opt int 1
         & info [ "retries" ] ~docv:"N"
             ~doc:"Attempts per job (1 = no retry).  Transient faults \
                   (timeout, resource, internal) are re-dispatched with \
                   exponential backoff; infeasible points fail fast.")
  in
  let backoff_arg =
    Arg.(value & opt float 0.05
         & info [ "backoff" ] ~docv:"S"
             ~doc:"Base backoff before the second attempt, in seconds \
                   (doubles per retry round, deterministic jitter).")
  in
  let degrade_arg =
    Arg.(value & flag
         & info [ "degrade" ]
             ~doc:"When the fragmented flow fails or times out at a point, \
                   fall back to the direct (conventional) flow and keep the \
                   point, marked degraded, instead of losing it.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume an interrupted sweep: replay the cache journal \
                   (needs --cache) and recompute only the missing points.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the sweep as JSON.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Sweep the design space and print its Pareto frontier")
    Term.(const run $ telemetry_term $ connect_arg $ file_arg $ builtin_arg
          $ latency_arg $ policies_arg $ libs_arg $ balance_arg $ recipes_arg
          $ iterate_arg $ verify_arg $ cleanup_arg $ jobs_arg $ timeout_arg
          $ cache_arg $ feedback_arg $ retries_arg $ backoff_arg $ degrade_arg
          $ resume_arg $ json_arg)

(* "HOST:PORT" for --listen; rejects bare socket paths. *)
let parse_listen = function
  | None -> None
  | Some s -> (
      match Hls_server.Client.parse_address s with
      | Hls_server.Client.Tcp (h, p) -> Some (h, p)
      | Hls_server.Client.Unix_socket _ ->
          usage_die ("--listen expects HOST:PORT, got " ^ s))

let serve_cmd =
  let module Server = Hls_server.Server in
  let run tel socket listen stdio queue batch jobs cache_path io_timeout
      max_conns grace =
    with_telemetry tel @@ fun () ->
    let cache =
      match cache_path with
      | None -> None
      | Some path -> (
          match Hls_dse.Cache.create ~path () with
          | c -> Some c
          | exception Hls_dse.Cache.Locked lock ->
              usage_die
                (Printf.sprintf "cache is locked by another live process (%s)"
                   lock))
    in
    let exec = Api.Exec.create ?cache () in
    Fun.protect
      ~finally:(fun () -> Api.Exec.close exec)
      (fun () ->
        let listen = parse_listen listen in
        if stdio then Server.serve_stdio exec stdin stdout
        else if socket = None && listen = None then
          usage_die "give --socket PATH, --listen HOST:PORT or --stdio"
        else begin
          let cfg =
            {
              (Server.default_config ~socket:"") with
              Server.socket;
              listen;
              max_queue = queue;
              batch;
              workers = (if jobs <= 0 then None else Some jobs);
              max_conns;
              io_timeout_s = (if io_timeout <= 0. then None else Some io_timeout);
              grace_s = grace;
            }
          in
          let endpoints =
            (match socket with Some s -> [ s ] | None -> [])
            @ (match listen with
              | Some (h, p) -> [ Printf.sprintf "%s:%d" h p ]
              | None -> [])
          in
          Printf.eprintf "hlsopt: serving on %s (queue %d, batch %d)\n%!"
            (String.concat " and " endpoints)
            queue batch;
          Server.serve ~handle_signals:true cfg exec;
          prerr_endline "hlsopt: drained, exiting"
        end)
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket"; "s" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on.")
  in
  let listen_arg =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"HOST:PORT"
             ~doc:"Also (or instead) listen on TCP; same NDJSON protocol.")
  in
  let stdio_arg =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve NDJSON on stdin/stdout instead of a socket.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue bound; beyond it requests are answered \
                   overloaded (exit code 6) instead of buffered.")
  in
  let batch_arg =
    Arg.(value & opt int 16
         & info [ "batch" ] ~docv:"N" ~doc:"Max requests per pool batch.")
  in
  let jobs_arg =
    Arg.(value & opt int 0
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains for request batches (0 = auto).")
  in
  let cache_arg =
    Arg.(value & opt (some string) None
         & info [ "cache" ] ~docv:"FILE"
             ~doc:"Shared sweep cache backing every explore request.")
  in
  let io_timeout_arg =
    Arg.(value & opt float 0.
         & info [ "io-timeout" ] ~docv:"SECS"
             ~doc:"Per-connection read/write timeout: a connection stalled \
                   mid-request longer than this is answered unavailable and \
                   dropped (0 = no timeout).")
  in
  let max_conns_arg =
    Arg.(value & opt int 256
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Concurrent connection cap; beyond it new connections are \
                   answered unavailable (exit code 8) and closed.")
  in
  let grace_arg =
    Arg.(value & opt float 5.
         & info [ "grace" ] ~docv:"SECS"
             ~doc:"Shutdown drain bound: work still queued this long after \
                   SIGTERM is answered unavailable instead of executed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the request daemon (line-delimited JSON requests)")
    Term.(const run $ telemetry_term $ socket_arg $ listen_arg $ stdio_arg
          $ queue_arg $ batch_arg $ jobs_arg $ cache_arg $ io_timeout_arg
          $ max_conns_arg $ grace_arg)

let call_cmd =
  let module Retry = Hls_pool.Retry_policy in
  (* One raw line, reconnecting per attempt (the daemon may have
     restarted between them).  Retryable answers (overloaded,
     unavailable, retryable flow failures) and transport errors back
     off and retry; the last answer received is printed even when the
     budget runs out, so callers see the typed error. *)
  let retry_roundtrip ~socket ~retry line =
    let rec attempt n =
      if n > 1 then Unix.sleepf (Retry.delay_s retry ~attempt:(n - 1) ~job:0);
      let outcome =
        match Hls_server.Client.connect socket with
        | Error m -> Error m
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Hls_server.Client.close c)
              (fun () -> Hls_server.Client.raw_roundtrip c line)
      in
      let retry_failure =
        match outcome with
        | Error m ->
            Some (Hls_util.Failure.Internal (Hls_util.Failure.Remote m))
        | Ok resp_line -> (
            match Resp.of_string resp_line with
            | Ok { Resp.result = Error e; _ } when Resp.retryable e -> (
                match e with
                | Resp.Failed f -> Some f
                | e ->
                    Some
                      (Hls_util.Failure.Internal
                         (Hls_util.Failure.Remote (Resp.error_message e))))
            | _ -> None)
      in
      match retry_failure with
      | Some f when Retry.should_retry retry ~attempt:n f -> attempt (n + 1)
      | _ -> outcome
    in
    attempt 1
  in
  let run socket burst retries backoff =
    if burst && retries > 0 then
      usage_die "--burst pipelines one connection; it cannot retry \
                 (drop --retries)";
    let retry =
      if retries <= 0 then Retry.none
      else Retry.make ~attempts:(retries + 1) ~backoff_s:backoff ()
    in
    if retries > 0 then
      (try
         while true do
           let line = input_line stdin in
           if String.trim line <> "" then
             match retry_roundtrip ~socket ~retry line with
             | Ok resp -> print_endline resp
             | Error m -> transport_die m
         done
       with End_of_file -> ())
    else
      match Hls_server.Client.connect socket with
      | Error m -> transport_die m
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Hls_server.Client.close c)
            (fun () ->
              let lines = ref [] in
              (try
                 while true do
                   let line = input_line stdin in
                   if String.trim line <> "" then
                     if burst then lines := line :: !lines
                     else
                       match Hls_server.Client.raw_roundtrip c line with
                       | Ok resp -> print_endline resp
                       | Error m -> transport_die m
                 done
               with End_of_file -> ());
              if burst then
                (* ship everything before reading anything: the only way a
                   single connection can overrun the admission queue *)
                match
                  Hls_server.Client.raw_burst c (List.rev !lines)
                with
                | Ok resps -> List.iter print_endline resps
                | Error m -> transport_die m)
  in
  let socket_arg =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"Daemon or router to talk to: a Unix-socket path or \
                   HOST:PORT.")
  in
  let burst_arg =
    Arg.(value & flag
         & info [ "burst" ]
             ~doc:"Send every request before reading any response \
                   (pipelined; exercises the admission queue).")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry each request up to N times on retryable answers \
                   (overloaded, unavailable, retryable failures) and \
                   transport errors, reconnecting per attempt.")
  in
  let backoff_arg =
    Arg.(value & opt float 0.05
         & info [ "backoff" ] ~docv:"SECS"
             ~doc:"Base delay before the second attempt; doubles per \
                   attempt with jitter.")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:"Pipe raw NDJSON requests from stdin to a daemon, print raw \
             responses")
    Term.(const run $ socket_arg $ burst_arg $ retries_arg $ backoff_arg)

let route_cmd =
  let module Router = Hls_router.Router in
  let run tel socket listen backends spawn spawn_dir queue batch jobs
      max_inflight retries backoff probe_interval probe_timeout eject_after
      cooldown hold grace io_timeout =
    with_telemetry tel @@ fun () ->
    let listen = parse_listen listen in
    if socket = None && listen = None then
      usage_die "give --socket PATH or --listen HOST:PORT";
    if backends = [] && spawn <= 0 then
      usage_die "give --backends ADDR,... or --spawn N";
    let spawn_cfg =
      if spawn <= 0 then None
      else begin
        let dir =
          match spawn_dir with
          | Some d -> d
          | None ->
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "hlsopt-fleet-%d" (Unix.getpid ()))
        in
        (try Unix.mkdir dir 0o700
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let socket_of i =
          Filename.concat dir (Printf.sprintf "backend-%d.sock" i)
        in
        let command i =
          Array.of_list
            ([ Sys.executable_name; "serve"; "--socket"; socket_of i;
               "--queue"; string_of_int queue; "--batch"; string_of_int batch ]
            @ (if jobs > 0 then [ "--jobs"; string_of_int jobs ] else []))
        in
        Some { Router.count = spawn; command; socket_of }
      end
    in
    let cfg =
      {
        (Router.default_config ()) with
        Router.socket;
        listen;
        backends;
        spawn = spawn_cfg;
        max_inflight;
        retry =
          Hls_pool.Retry_policy.make ~attempts:(retries + 1)
            ~backoff_s:backoff ();
        probe_interval_s = probe_interval;
        probe_timeout_s = probe_timeout;
        eject_after;
        cooldown_s = cooldown;
        hold_s = hold;
        grace_s = grace;
        io_timeout_s = (if io_timeout <= 0. then None else Some io_timeout);
      }
    in
    let endpoints =
      (match socket with Some s -> [ s ] | None -> [])
      @ (match listen with
        | Some (h, p) -> [ Printf.sprintf "%s:%d" h p ]
        | None -> [])
    in
    Printf.eprintf "hlsopt: routing on %s across %d backends\n%!"
      (String.concat " and " endpoints)
      (List.length backends + max 0 spawn);
    Router.serve ~handle_signals:true
      ~log:(fun m -> Printf.eprintf "hlsopt: %s\n%!" m)
      cfg;
    prerr_endline "hlsopt: router drained, exiting"
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket"; "s" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to accept clients on.")
  in
  let listen_arg =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"HOST:PORT"
             ~doc:"Also (or instead) accept clients over TCP.")
  in
  let backends_arg =
    Arg.(value & opt (list string) []
         & info [ "backends" ] ~docv:"ADDR,..."
             ~doc:"Externally managed backend daemons (socket paths or \
                   HOST:PORT addresses).")
  in
  let spawn_arg =
    Arg.(value & opt int 0
         & info [ "spawn" ] ~docv:"N"
             ~doc:"Spawn N 'hlsopt serve' child backends and respawn them \
                   when they die.")
  in
  let spawn_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "spawn-dir" ] ~docv:"DIR"
             ~doc:"Directory for spawned backends' sockets (default: a \
                   per-pid directory under the system temp dir).")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue bound forwarded to spawned backends.")
  in
  let batch_arg =
    Arg.(value & opt int 16
         & info [ "batch" ] ~docv:"N"
             ~doc:"Batch bound forwarded to spawned backends.")
  in
  let jobs_arg =
    Arg.(value & opt int 0
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains forwarded to spawned backends (0 = auto).")
  in
  let max_inflight_arg =
    Arg.(value & opt int 256
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:"Cap on queued plus in-flight requests; beyond it \
                   requests are answered overloaded (exit code 6).")
  in
  let retries_arg =
    Arg.(value & opt int 2
         & info [ "retries" ] ~docv:"N"
             ~doc:"Failover attempts per request after its first dispatch \
                   before answering unavailable (exit code 8).")
  in
  let backoff_arg =
    Arg.(value & opt float 0.05
         & info [ "backoff" ] ~docv:"SECS"
             ~doc:"Base failover backoff; doubles per attempt with jitter.")
  in
  let probe_interval_arg =
    Arg.(value & opt float 0.5
         & info [ "probe-interval" ] ~docv:"SECS"
             ~doc:"How often each backend is health-checked with a ping.")
  in
  let probe_timeout_arg =
    Arg.(value & opt float 2.
         & info [ "probe-timeout" ] ~docv:"SECS"
             ~doc:"Unanswered probes older than this count as failures.")
  in
  let eject_after_arg =
    Arg.(value & opt int 3
         & info [ "eject-after" ] ~docv:"N"
             ~doc:"Consecutive failures before a backend stops taking \
                   traffic.")
  in
  let cooldown_arg =
    Arg.(value & opt float 1.
         & info [ "cooldown" ] ~docv:"SECS"
             ~doc:"Ejection time before a half-open probe may readmit the \
                   backend.")
  in
  let hold_arg =
    Arg.(value & opt float 5.
         & info [ "hold" ] ~docv:"SECS"
             ~doc:"How long a request waits for a healthy backend before \
                   it is answered unavailable.")
  in
  let grace_arg =
    Arg.(value & opt float 5.
         & info [ "grace" ] ~docv:"SECS"
             ~doc:"Shutdown drain bound: in-flight work unanswered this \
                   long after SIGTERM is answered unavailable.")
  in
  let io_timeout_arg =
    Arg.(value & opt float 30.
         & info [ "io-timeout" ] ~docv:"SECS"
             ~doc:"Per-client write timeout: a client that stops reading \
                   its responses is dropped after this long instead of \
                   stalling the router (0 = no timeout).")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Run the sharded serving front end: digest-affinity routing, \
             health-checked backends, failover, scatter-gathered explores")
    Term.(const run $ telemetry_term $ socket_arg $ listen_arg $ backends_arg
          $ spawn_arg $ spawn_dir_arg $ queue_arg $ batch_arg $ jobs_arg
          $ max_inflight_arg $ retries_arg $ backoff_arg $ probe_interval_arg
          $ probe_timeout_arg $ eject_after_arg $ cooldown_arg $ hold_arg
          $ grace_arg $ io_timeout_arg)

(* Structural checks over a --trace file; `make trace-smoke` leans on
   this so CI can tell a Perfetto-loadable trace from truncated JSON. *)
let trace_validate_cmd =
  let module J = Hls_dse.Dse_json in
  let run file expects min_tracks =
    let ic = open_in file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let j = or_die (J.of_string src) in
    let events =
      match Option.bind (J.member "traceEvents" j) J.to_list with
      | Some l -> l
      | None -> usage_die (file ^ ": no traceEvents array")
    in
    let spans = Hashtbl.create 16 and tracks = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let str k = Option.bind (J.member k e) J.to_str in
        let int k = Option.bind (J.member k e) J.to_int in
        (match (str "ph", str "name") with
        | Some "X", Some n -> Hashtbl.replace spans n ()
        | (Some _ | None), _ -> ());
        match (int "pid", int "tid") with
        | Some p, Some t -> Hashtbl.replace tracks (p, t) ()
        | _ -> usage_die (file ^ ": event without integer pid/tid"))
      events;
    let missing = List.filter (fun n -> not (Hashtbl.mem spans n)) expects in
    if missing <> [] then
      usage_die
        (Printf.sprintf "%s: missing span%s: %s" file
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing));
    if Hashtbl.length tracks < min_tracks then
      usage_die
        (Printf.sprintf "%s: expected at least %d tracks, found %d" file
           min_tracks (Hashtbl.length tracks));
    Printf.printf "trace OK: %d events, %d spans, %d tracks\n"
      (List.length events) (Hashtbl.length spans) (Hashtbl.length tracks)
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE" ~doc:"Chrome trace-event JSON file.")
  in
  let expect_arg =
    Arg.(value & opt (list string) []
         & info [ "expect" ] ~docv:"NAMES"
             ~doc:"Comma-separated span names that must appear as complete \
                   ('X') events.")
  in
  let min_tracks_arg =
    Arg.(value & opt int 1
         & info [ "min-tracks" ] ~docv:"N"
             ~doc:"Minimum number of distinct (pid, tid) tracks.")
  in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:"Check that a --trace file is well-formed Chrome trace JSON")
    Term.(const run $ file_arg $ expect_arg $ min_tracks_arg)

(* Fault injection (tests and `make fault-smoke` only): inert unless the
   HLS_FAULTS environment variable is set. *)
let () =
  match Hls_util.Faults.arm_from_env () with
  | () -> ()
  | exception Invalid_argument m -> usage_die ("bad HLS_FAULTS: " ^ m)

let main =
  let doc = "operation-fragmentation presynthesis optimization for HLS" in
  Cmd.group (Cmd.info "hlsopt" ~version:"1.0.0" ~doc)
    [ parse_cmd; optimize_cmd; transform_cmd; schedule_cmd; report_cmd;
      explore_cmd; iterate_cmd; emit_vhdl_cmd; emit_verilog_cmd; simulate_cmd;
      serve_cmd; route_cmd; call_cmd; stats_cmd; workloads_cmd; list_cmd;
      fuzz_cmd; trace_validate_cmd ]

let () = exit (Cmd.eval main)
