(* hlsopt — command-line driver for the operation-fragmentation HLS flow.

   Subcommands:
     parse      parse and validate a specification, print its statistics
     optimize   run the presynthesis transformation, print the new spec
     schedule   schedule with a chosen flow and print the cycle assignment
     report     compare the conventional / BLC / optimized flows
     explore    sweep the design space and print its Pareto frontier
     emit-vhdl  print behavioural or RTL VHDL
     list       list the built-in workloads
     trace-validate  structural checks over a --trace JSON file

   Every subcommand also takes --trace FILE (Chrome trace-event JSON of
   the run) and --metrics (span/counter summary on stderr). *)

module P = Hls_core.Pipeline
module Graph = Hls_dfg.Graph

let load ~file ~builtin =
  match (file, builtin) with
  | Some path, None ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      (match Hls_speclang.Elaborate.from_string_result src with
      | Ok g -> Ok g
      | Error m -> Error m)
  | None, Some name -> (
      match Hls_workloads.Registry.find name with
      | Some g -> Ok g
      | None ->
          Error
            (Printf.sprintf "unknown builtin %s (try: %s)" name
               (String.concat ", " (Hls_workloads.Registry.names ()))))
  | Some _, Some _ -> Error "give either a file or --builtin, not both"
  | None, None -> Error "give a specification file or --builtin NAME"

let or_die = function
  | Ok v -> v
  | Error m ->
      prerr_endline ("hlsopt: " ^ m);
      exit 1

open Cmdliner

(* --trace / --metrics ride on every subcommand. *)
let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON of this run; load it at \
                 ui.perfetto.dev or chrome://tracing.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print a span/counter/gauge summary on stderr when done.")

let telemetry_term = Term.(const (fun t m -> (t, m)) $ trace_arg $ metrics_arg)

(* Arm the sink per the flags, run the command, export on the way out.
   [arm_metrics] arms metric recording even without --metrics (explore
   needs span totals for its phase-breakdown footer) but prints the
   summary only when asked.  A command that dies through [or_die] exits
   without unwinding and so writes no trace — there is no run to look
   at.  Exporting sits in the [Fun.protect] finaliser so a command that
   *raises* still leaves its trace behind, which is exactly when one is
   wanted. *)
let with_telemetry ?(arm_metrics = false) (trace, metrics) f =
  if trace <> None || metrics || arm_metrics then begin
    Hls_telemetry.arm ~trace:(trace <> None) ~metrics:true ();
    Hls_telemetry.name_track "main"
  end;
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | Some path ->
          Hls_telemetry.write_chrome_trace path;
          Printf.eprintf "hlsopt: trace written to %s\n%!" path
      | None -> ());
      if metrics then prerr_string (Hls_telemetry.metrics_summary ()))
    f

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Specification source file.")

let builtin_arg =
  Arg.(value & opt (some string) None & info [ "builtin"; "b" ] ~docv:"NAME"
         ~doc:"Use a built-in workload instead of a file.")

let latency_arg =
  Arg.(value & opt int 3 & info [ "latency"; "l" ] ~docv:"CYCLES"
         ~doc:"Target latency in clock cycles.")

let print_graph_stats g =
  Format.printf "graph %s: %d inputs, %d outputs, %d nodes (%d operations)@."
    (Graph.name g)
    (List.length g.Graph.inputs)
    (List.length g.Graph.outputs)
    (Graph.node_count g)
    (Graph.behavioural_op_count g);
  Format.printf "critical path: %d delta (chained 1-bit additions)@."
    (Hls_timing.Critical_path.critical_delta (Hls_kernel.Extract.run g))

let parse_cmd =
  let run tel file builtin =
    with_telemetry tel @@ fun () ->
    let g = or_die (load ~file ~builtin) in
    print_graph_stats g;
    Format.printf "%a@." Graph.pp g
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and validate a specification")
    Term.(const run $ telemetry_term $ file_arg $ builtin_arg)

let optimize_cmd =
  let run tel file builtin latency vhdl =
    with_telemetry tel @@ fun () ->
    let g = or_die (load ~file ~builtin) in
    let kernel = Hls_kernel.Extract.run g in
    let t = Hls_fragment.Transform.run kernel ~latency in
    let tg = t.Hls_fragment.Transform.graph in
    Format.printf "-- critical path %d delta, cycle %d delta, %d fragments@."
      t.Hls_fragment.Transform.plan.Hls_fragment.Mobility.critical
      t.Hls_fragment.Transform.plan.Hls_fragment.Mobility.n_bits
      (Graph.behavioural_op_count tg);
    if vhdl then print_string (Hls_speclang.Vhdl.emit tg)
    else
      match Hls_speclang.Emit.emit tg with
      | src -> print_string src
      | exception Hls_speclang.Emit.Unprintable _ ->
          print_string (Hls_speclang.Vhdl.emit tg)
  in
  let vhdl_arg =
    Arg.(value & flag & info [ "vhdl" ] ~doc:"Emit VHDL instead of the \
                                              specification language.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the presynthesis transformation and print the new spec")
    Term.(const run $ telemetry_term $ file_arg $ builtin_arg $ latency_arg
          $ vhdl_arg)

(* ASCII Gantt: one row per original operation, columns are cycles. *)
let print_gantt s latency =
  let g = Hls_sched.Frag_sched.graph s in
  let by_op = Hashtbl.create 16 in
  Hls_dfg.Graph.iter_nodes
    (fun n ->
      match (n.Hls_dfg.Types.kind, n.Hls_dfg.Types.origin) with
      | Hls_dfg.Types.Add, Some o ->
          let key = o.Hls_dfg.Types.orig_op in
          let cycles =
            Option.value (Hashtbl.find_opt by_op key) ~default:[]
          in
          Hashtbl.replace by_op key
            (s.Hls_sched.Frag_sched.cycle_of.(n.Hls_dfg.Types.id) :: cycles)
      | _ -> ())
    g;
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_op []
    |> List.sort compare
  in
  let name_w =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 4 rows
  in
  Format.printf "%-*s " name_w "op";
  for c = 1 to latency do Format.printf "%2d " c done;
  Format.printf "@.";
  List.iter
    (fun (k, cycles) ->
      Format.printf "%-*s " name_w k;
      for c = 1 to latency do
        Format.printf " %s "
          (if List.mem c cycles then "#" else ".")
      done;
      Format.printf "@.")
    rows

let schedule_cmd =
  let run tel file builtin latency flow =
    with_telemetry tel @@ fun () ->
    let g = or_die (load ~file ~builtin) in
    match flow with
    | "optimized" ->
        let opt = P.optimized g ~latency in
        let s = opt.P.schedule in
        for cycle = 1 to latency do
          let adds = Hls_sched.Frag_sched.adds_in_cycle s cycle in
          Format.printf "cycle %d: %s@." cycle
            (String.concat ", "
               (List.map (fun n -> n.Hls_dfg.Types.label) adds))
        done;
        List.iter
          (fun (p : Hls_sched.Frag_sched.cycle_profile) ->
            Format.printf
              "cycle %d: chain %d delta, %d fragments, %d adder bits@."
              p.Hls_sched.Frag_sched.cp_cycle p.cp_used_delta p.cp_fragments
              p.cp_adder_bits)
          (Hls_sched.Frag_sched.profile s);
        Format.printf "achieved chain: %d delta@."
          (Hls_sched.Frag_sched.used_delta s);
        Format.printf "@.";
        print_gantt s latency
    | "conventional" ->
        let t = Hls_sched.List_sched.schedule g ~latency in
        for cycle = 1 to latency do
          let ops = Hls_sched.List_sched.ops_in_cycle t cycle in
          Format.printf "cycle %d: %s@." cycle
            (String.concat ", "
               (List.map (fun n -> n.Hls_dfg.Types.label) ops))
        done;
        Format.printf "cycle length: %d delta@." t.Hls_sched.List_sched.cycle_delta
    | "blc" ->
        let t = Hls_sched.Blc_sched.schedule g ~latency in
        Format.printf "budget: %d delta@." t.Hls_sched.Blc_sched.cycle_delta
    | other ->
        prerr_endline ("unknown flow " ^ other);
        exit 1
  in
  let flow_arg =
    Arg.(value & opt string "optimized"
         & info [ "flow"; "f" ] ~docv:"FLOW"
             ~doc:"Flow: conventional, blc or optimized.")
  in
  Cmd.v (Cmd.info "schedule" ~doc:"Schedule and print the cycle assignment")
    Term.(const run $ telemetry_term $ file_arg $ builtin_arg $ latency_arg
          $ flow_arg)

let report_cmd =
  let run tel file builtin latency cleanup target_ns =
    with_telemetry tel @@ fun () ->
    let g = or_die (load ~file ~builtin) in
    print_graph_stats g;
    let latency =
      match target_ns with
      | None -> latency
      | Some ns -> (
          match P.optimized_for_cycle g ~target_ns:ns with
          | Some (l, _) ->
              Format.printf "target %.2f ns -> latency %d@." ns l;
              l
          | None ->
              prerr_endline "hlsopt: the period target is unreachable";
              exit 1)
    in
    let conv = P.conventional g ~latency in
    let opt = P.optimized ~cleanup g ~latency in
    Format.printf "@.%a@.@.%a@." P.pp_report conv P.pp_report
      opt.P.opt_report;
    (match P.check_optimized_equivalence g opt with
    | Ok () -> Format.printf "@.equivalence check: OK@."
    | Error m -> Format.printf "@.equivalence check FAILED: %s@." m);
    Format.printf "cycle saved: %.1f %%@."
      (P.pct_saved ~original:conv.P.cycle_ns
         ~optimized:opt.P.opt_report.P.cycle_ns)
  in
  let cleanup_arg =
    Arg.(value & flag & info [ "cleanup" ]
           ~doc:"Run constant folding / CSE / DCE before fragmentation.")
  in
  let target_arg =
    Arg.(value & opt (some float) None
         & info [ "target-ns" ] ~docv:"NS"
             ~doc:"Pick the smallest latency meeting this clock period                    instead of --latency.")
  in
  Cmd.v (Cmd.info "report" ~doc:"Compare the conventional and optimized flows")
    Term.(const run $ telemetry_term $ file_arg $ builtin_arg $ latency_arg
          $ cleanup_arg $ target_arg)

let emit_vhdl_cmd =
  let run tel file builtin latency rtl netlist =
    with_telemetry tel @@ fun () ->
    let g = or_die (load ~file ~builtin) in
    if netlist then begin
      let opt = P.optimized g ~latency in
      let nl = Hls_rtl.Elaborate_netlist.elaborate opt.P.schedule in
      print_string
        (Hls_rtl.Vhdl_netlist.emit
           ~name:(Hls_speclang.Names.sanitize (Graph.name g))
           nl)
    end
    else if rtl then begin
      let opt = P.optimized g ~latency in
      print_string (Hls_rtl.Rtl_vhdl.emit opt.P.schedule)
    end
    else print_string (Hls_speclang.Vhdl.emit g)
  in
  let rtl_arg =
    Arg.(value & flag & info [ "rtl" ]
           ~doc:"Emit the scheduled RTL (FSM + datapath) instead of the \
                 behavioural source.")
  in
  let netlist_arg =
    Arg.(value & flag & info [ "netlist" ]
           ~doc:"Emit the gate-level structural netlist.")
  in
  Cmd.v (Cmd.info "emit-vhdl" ~doc:"Print VHDL")
    Term.(const run $ telemetry_term $ file_arg $ builtin_arg $ latency_arg
          $ rtl_arg $ netlist_arg)

let emit_verilog_cmd =
  let run tel file builtin latency testbench =
    with_telemetry tel @@ fun () ->
    let g = or_die (load ~file ~builtin) in
    let opt = P.optimized g ~latency in
    let nl = Hls_rtl.Elaborate_netlist.elaborate opt.P.schedule in
    let name = Hls_speclang.Names.sanitize (Graph.name g) in
    print_string (Hls_rtl.Verilog.emit ~name nl);
    if testbench then begin
      let prng = Hls_util.Prng.create ~seed:7 in
      let vectors =
        List.init 5 (fun _ ->
            let inputs = Hls_sim.random_inputs g prng in
            (inputs, Hls_sim.outputs g ~inputs))
      in
      print_newline ();
      print_string (Hls_rtl.Verilog.testbench ~name nl ~cycles:latency ~vectors)
    end
  in
  let tb_arg =
    Arg.(value & flag & info [ "testbench" ]
           ~doc:"Also emit a self-checking testbench with golden vectors.")
  in
  Cmd.v
    (Cmd.info "emit-verilog"
       ~doc:"Print the gate-level netlist as structural Verilog")
    Term.(const run $ telemetry_term $ file_arg $ builtin_arg $ latency_arg
          $ tb_arg)

let simulate_cmd =
  let run tel file builtin latency vcd_path seed =
    with_telemetry tel @@ fun () ->
    let g = or_die (load ~file ~builtin) in
    let opt = P.optimized g ~latency in
    let prng = Hls_util.Prng.create ~seed in
    let inputs = Hls_sim.random_inputs g prng in
    Format.printf "inputs:@.";
    List.iter
      (fun (n, v) -> Format.printf "  %s = %d@." n (Hls_bitvec.to_int v))
      inputs;
    let reference = Hls_sim.outputs g ~inputs in
    let netlist = Hls_rtl.Elaborate_netlist.elaborate opt.P.schedule in
    let gates = Hls_rtl.Netlist.run netlist ~cycles:latency ~inputs in
    Format.printf "outputs (behavioural | gate-level over %d cycles):@."
      latency;
    List.iter
      (fun (n, v) ->
        Format.printf "  %s = %d | %d@." n (Hls_bitvec.to_int v)
          (Hls_bitvec.to_int (List.assoc n gates)))
      reference;
    match vcd_path with
    | None -> ()
    | Some path ->
        let vcd = Hls_rtl.Netlist.dump_vcd netlist ~cycles:latency ~inputs in
        let oc = open_out path in
        output_string oc vcd;
        close_out oc;
        Format.printf "waveform written to %s@." path
  in
  let vcd_arg =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"FILE" ~doc:"Write a VCD waveform.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the random input vector.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run one random vector through the gate-level netlist")
    Term.(const run $ telemetry_term $ file_arg $ builtin_arg $ latency_arg
          $ vcd_arg $ seed_arg)

let list_cmd =
  let run tel () =
    with_telemetry tel @@ fun () ->
    List.iter
      (fun (name, g) ->
        Printf.printf "%-16s %3d operations, %2d inputs\n" name
          (Graph.behavioural_op_count g)
          (List.length g.Graph.inputs))
      (Hls_workloads.Registry.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workloads")
    Term.(const run $ telemetry_term $ const ())

let explore_cmd =
  let module Dse = Hls_dse in
  let run tel file builtin latspec policies libs balance cleanup jobs timeout
      cache_path feedback retries backoff degrade resume json =
    (* The sweep always arms metric recording: its report carries the
       per-phase time breakdown whether or not --metrics was given. *)
    with_telemetry ~arm_metrics:true tel @@ fun () ->
    let g = or_die (load ~file ~builtin) in
    let latencies = or_die (Dse.Space.parse_latencies latspec) in
    let policies =
      match policies with
      | "both" -> [ `Full; `Coalesced ]
      | s -> (
          match Dse.Space.policy_of_name s with
          | Some p -> [ p ]
          | None -> or_die (Error (Printf.sprintf "unknown policy %S" s)))
    in
    let libs =
      match libs with
      | "both" -> Dse.Space.known_libs
      | s -> (
          match Dse.Space.lib_of_name s with
          | Some l -> [ (s, l) ]
          | None -> or_die (Error (Printf.sprintf "unknown library %S" s)))
    in
    let bools ~name spec =
      match spec with
      | "both" -> Ok [ true; false ]
      | "on" -> Ok [ true ]
      | "off" -> Ok [ false ]
      | s -> Error (Printf.sprintf "bad %s %S (use on, off or both)" name s)
    in
    let balance = or_die (bools ~name:"--balance" balance) in
    let cleanup = or_die (bools ~name:"--cleanup" cleanup) in
    let space =
      Dse.Space.make ~latencies ~policies ~libs ~balance ~cleanup ()
    in
    if resume && cache_path = None then
      or_die (Error "--resume needs --cache FILE (the journal to replay)");
    let cache =
      match Dse.Cache.create ?path:cache_path () with
      | c -> c
      | exception Dse.Cache.Locked lock ->
          or_die
            (Error
               (Printf.sprintf
                  "cache is locked by another live sweep (%s); wait for it \
                   or remove the lock if you are sure"
                  lock))
    in
    (match Dse.Cache.load_warnings cache with
    | [] -> ()
    | ws ->
        Printf.eprintf
          "hlsopt: cache loaded with %d warning%s (damaged entries will \
           recompute): %s\n%!"
          (List.length ws)
          (if List.length ws = 1 then "" else "s")
          (String.concat "; " ws));
    if resume then
      Printf.eprintf
        "hlsopt: resuming: %d point%s recovered from the journal, %d in the \
         store\n%!"
        (Dse.Cache.recovered cache)
        (if Dse.Cache.recovered cache = 1 then "" else "s")
        (Dse.Cache.length cache - Dse.Cache.recovered cache);
    let retry =
      if retries <= 1 then Dse.Pool.Retry_policy.none
      else Dse.Pool.Retry_policy.make ~attempts:retries ~backoff_s:backoff ()
    in
    let workers = if jobs <= 0 then None else Some jobs in
    let result =
      Dse.Explore.run ?workers ?timeout_s:timeout ~cache ~feedback ~retry
        ~degrade g space
    in
    Dse.Cache.close cache;
    if json then
      print_endline (Dse.Dse_json.to_string ~indent:true (Dse.Explore.to_json result))
    else Format.printf "%a" Dse.Explore.pp result
  in
  let latency_arg =
    Arg.(value & opt string "2:6"
         & info [ "latency"; "l" ] ~docv:"RANGE"
             ~doc:"Latency axis: N, LO:HI, LO:HI:STEP or a comma list.")
  in
  let policies_arg =
    Arg.(value & opt string "full"
         & info [ "policies" ] ~docv:"P"
             ~doc:"Fragmentation policies: full, coalesced or both.")
  in
  let libs_arg =
    Arg.(value & opt string "ripple"
         & info [ "libs" ] ~docv:"L"
             ~doc:"Technology libraries: ripple, cla or both.")
  in
  let balance_arg =
    Arg.(value & opt string "on"
         & info [ "balance" ] ~docv:"B"
             ~doc:"Scheduler balancing axis: on, off or both.")
  in
  let cleanup_arg =
    Arg.(value & opt string "off"
         & info [ "cleanup" ] ~docv:"C"
             ~doc:"Presynthesis cleanup axis: on, off or both.")
  in
  let jobs_arg =
    Arg.(value & opt int 0
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains (0 = auto, 1 = serial).")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"S" ~doc:"Per-job timeout in seconds.")
  in
  let cache_arg =
    Arg.(value & opt (some string) None
         & info [ "cache" ] ~docv:"FILE"
             ~doc:"JSON cache file for incremental re-runs.")
  in
  let feedback_arg =
    Arg.(value & opt int 0
         & info [ "feedback" ] ~docv:"N"
             ~doc:"Feedback rounds refining the latency axis around the \
                   frontier.")
  in
  let retries_arg =
    Arg.(value & opt int 1
         & info [ "retries" ] ~docv:"N"
             ~doc:"Attempts per job (1 = no retry).  Transient faults \
                   (timeout, resource, internal) are re-dispatched with \
                   exponential backoff; infeasible points fail fast.")
  in
  let backoff_arg =
    Arg.(value & opt float 0.05
         & info [ "backoff" ] ~docv:"S"
             ~doc:"Base backoff before the second attempt, in seconds \
                   (doubles per retry round, deterministic jitter).")
  in
  let degrade_arg =
    Arg.(value & flag
         & info [ "degrade" ]
             ~doc:"When the fragmented flow fails or times out at a point, \
                   fall back to the direct (conventional) flow and keep the \
                   point, marked degraded, instead of losing it.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume an interrupted sweep: replay the cache journal \
                   (needs --cache) and recompute only the missing points.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the sweep as JSON.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Sweep the design space and print its Pareto frontier")
    Term.(const run $ telemetry_term $ file_arg $ builtin_arg $ latency_arg
          $ policies_arg $ libs_arg $ balance_arg $ cleanup_arg $ jobs_arg
          $ timeout_arg $ cache_arg $ feedback_arg $ retries_arg
          $ backoff_arg $ degrade_arg $ resume_arg $ json_arg)

(* Structural checks over a --trace file; `make trace-smoke` leans on
   this so CI can tell a Perfetto-loadable trace from truncated JSON. *)
let trace_validate_cmd =
  let module J = Hls_dse.Dse_json in
  let run file expects min_tracks =
    let ic = open_in file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let j = or_die (J.of_string src) in
    let events =
      match Option.bind (J.member "traceEvents" j) J.to_list with
      | Some l -> l
      | None -> or_die (Error (file ^ ": no traceEvents array"))
    in
    let spans = Hashtbl.create 16 and tracks = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let str k = Option.bind (J.member k e) J.to_str in
        let int k = Option.bind (J.member k e) J.to_int in
        (match (str "ph", str "name") with
        | Some "X", Some n -> Hashtbl.replace spans n ()
        | (Some _ | None), _ -> ());
        match (int "pid", int "tid") with
        | Some p, Some t -> Hashtbl.replace tracks (p, t) ()
        | _ -> or_die (Error (file ^ ": event without integer pid/tid")))
      events;
    let missing = List.filter (fun n -> not (Hashtbl.mem spans n)) expects in
    if missing <> [] then
      or_die
        (Error
           (Printf.sprintf "%s: missing span%s: %s" file
              (if List.length missing = 1 then "" else "s")
              (String.concat ", " missing)));
    if Hashtbl.length tracks < min_tracks then
      or_die
        (Error
           (Printf.sprintf "%s: expected at least %d tracks, found %d" file
              min_tracks (Hashtbl.length tracks)));
    Printf.printf "trace OK: %d events, %d spans, %d tracks\n"
      (List.length events) (Hashtbl.length spans) (Hashtbl.length tracks)
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TRACE" ~doc:"Chrome trace-event JSON file.")
  in
  let expect_arg =
    Arg.(value & opt (list string) []
         & info [ "expect" ] ~docv:"NAMES"
             ~doc:"Comma-separated span names that must appear as complete \
                   ('X') events.")
  in
  let min_tracks_arg =
    Arg.(value & opt int 1
         & info [ "min-tracks" ] ~docv:"N"
             ~doc:"Minimum number of distinct (pid, tid) tracks.")
  in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:"Check that a --trace file is well-formed Chrome trace JSON")
    Term.(const run $ file_arg $ expect_arg $ min_tracks_arg)

(* Fault injection (tests and `make fault-smoke` only): inert unless the
   HLS_FAULTS environment variable is set. *)
let () =
  match Hls_util.Faults.arm_from_env () with
  | () -> ()
  | exception Invalid_argument m ->
      prerr_endline ("hlsopt: bad HLS_FAULTS: " ^ m);
      exit 1

let main =
  let doc = "operation-fragmentation presynthesis optimization for HLS" in
  Cmd.group (Cmd.info "hlsopt" ~version:"1.0.0" ~doc)
    [ parse_cmd; optimize_cmd; schedule_cmd; report_cmd; explore_cmd;
      emit_vhdl_cmd; emit_verilog_cmd; simulate_cmd; list_cmd;
      trace_validate_cmd ]

let () = exit (Cmd.eval main)
